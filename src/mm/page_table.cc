#include "src/mm/page_table.h"

#include <atomic>
#include <cassert>

namespace tlbsim {

namespace {
uint64_t NextRootId() {
  // Atomic: page tables are constructed concurrently when a sweep fans
  // simulation jobs across host threads (src/exec/sweep.h). Ids handed out
  // here are only uniqueness tokens — anything deterministic derives from
  // the explicit-id constructor instead.
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

// Virtual-address span covered by one entry at `level`.
constexpr uint64_t SpanAt(int level) { return 1ULL << (kPageShift + kPtIndexBits * level); }
}  // namespace

PageTable::PageTable() : root_(std::make_unique<Node>()), root_id_(NextRootId()) {}

PageTable::PageTable(uint64_t root_id) : root_(std::make_unique<Node>()), root_id_(root_id) {}

PageTable::Node* PageTable::NodeForIn(Node* root, uint64_t va, PageSize size, bool create,
                                      int home_node, uint64_t* node_count) {
  int leaf_level = size == PageSize::k4K ? 0 : 1;
  Node* node = root;
  for (int level = kPtLevels - 1; level > leaf_level; --level) {
    uint64_t idx = PtIndex(va, level);
    if (!node->children[idx]) {
      if (!create) {
        return nullptr;
      }
      node->children[idx] = std::make_unique<Node>();
      node->children[idx]->node = home_node;
      node->entries[idx] =
          Pte(PteFlags::kPresent | PteFlags::kWrite | PteFlags::kUser);  // table entry
      if (node_count != nullptr) {
        ++*node_count;
      }
    }
    node = node->children[idx].get();
  }
  return node;
}

void PageTable::PropagateStore(uint64_t va, PageSize size, Pte new_pte) {
  if (replicas_.empty() || skip_replica_propagation_) {
    return;
  }
  int leaf_level = size == PageSize::k4K ? 0 : 1;
  for (Replica& rep : replicas_) {
    // Dropping a leaf never materializes replica paging structures; stores
    // create the path (homed on the replica's node) on demand.
    Node* node = NodeForIn(rep.root.get(), va, size, /*create=*/new_pte.present(), rep.node,
                           /*node_count=*/nullptr);
    if (node == nullptr) {
      continue;
    }
    node->entries[PtIndex(va, leaf_level)] = new_pte;
  }
}

void PageTable::Map(uint64_t va, uint64_t pfn, uint64_t flags, PageSize size) {
  assert((flags & PteFlags::kPresent) != 0);
  assert(va % BytesOf(size) == 0 && "unaligned mapping");
  Node* node = NodeFor(va, size, /*create=*/true);
  int leaf_level = size == PageSize::k4K ? 0 : 1;
  uint64_t idx = PtIndex(va, leaf_level);
  if (size == PageSize::k2M) {
    assert(!node->children[idx] && "2M mapping over existing page table");
    flags |= PteFlags::kHuge;
  }
  Pte old = node->entries[idx];
  node->entries[idx] = Pte::Make(pfn, flags);
  if (write_observer_ != nullptr) {
    write_observer_->OnPteWrite(*this, va, old, node->entries[idx], size);
  }
  PropagateStore(va, size, node->entries[idx]);
}

Pte PageTable::SetPte(uint64_t va, Pte new_pte) {
  WalkResult r = Walk(va);
  assert(r.present && "SetPte on unmapped address");
  Node* node = NodeFor(va, r.size, /*create=*/false);
  assert(node != nullptr);
  int leaf_level = r.size == PageSize::k4K ? 0 : 1;
  uint64_t idx = PtIndex(va, leaf_level);
  Pte old = node->entries[idx];
  node->entries[idx] = new_pte;
  if (write_observer_ != nullptr) {
    write_observer_->OnPteWrite(*this, va, old, new_pte, r.size);
  }
  PropagateStore(va, r.size, new_pte);
  return old;
}

Pte PageTable::Unmap(uint64_t va) {
  WalkResult r = Walk(va);
  if (!r.present) {
    return Pte();
  }
  Node* node = NodeFor(va, r.size, /*create=*/false);
  int leaf_level = r.size == PageSize::k4K ? 0 : 1;
  uint64_t idx = PtIndex(va, leaf_level);
  Pte old = node->entries[idx];
  node->entries[idx] = Pte();
  if (write_observer_ != nullptr) {
    write_observer_->OnPteWrite(*this, va, old, Pte(), r.size);
  }
  PropagateStore(va, r.size, Pte());
  return old;
}

PageTable::WalkResult PageTable::WalkIn(const Node* root, uint64_t va, int walker_node) {
  WalkResult r;
  const Node* node = root;
  for (int level = kPtLevels - 1; level >= 0; --level) {
    ++r.levels_visited;
    // Fetching an entry reads the paging-structure page holding it; remote
    // home node = remote DRAM access for this level.
    bool remote = walker_node >= 0 && node->node != walker_node;
    if (remote) {
      ++r.remote_levels;
    }
    r.leaf_remote = remote;
    uint64_t idx = PtIndex(va, level);
    const Pte& e = node->entries[idx];
    if (!e.present()) {
      return r;
    }
    if (level == 1 && e.huge()) {
      r.pte = e;
      r.size = PageSize::k2M;
      r.present = true;
      return r;
    }
    if (level == 0) {
      r.pte = e;
      r.size = PageSize::k4K;
      r.present = true;
      return r;
    }
    if (!node->children[idx]) {
      return r;
    }
    node = node->children[idx].get();
  }
  return r;
}

PageTable::WalkResult PageTable::Walk(uint64_t va, int walker_node) const {
  const Node* root = root_.get();
  if (walker_node > 0 && !replicas_.empty() &&
      walker_node <= static_cast<int>(replicas_.size())) {
    root = replicas_[static_cast<size_t>(walker_node - 1)].root.get();
  }
  return WalkIn(root, va, walker_node);
}

void PageTable::VisitPresent(const Node& root, uint64_t lo, uint64_t hi,
                             const std::function<void(uint64_t, Pte, PageSize)>& fn) {
  // Recursive descent over the radix tree, pruned to [lo, hi).
  struct Rec {
    const std::function<void(uint64_t, Pte, PageSize)>& fn;
    uint64_t lo, hi;
    void Visit(const Node& node, int level, uint64_t base) {
      uint64_t span = SpanAt(level);
      for (uint64_t i = 0; i < kPtEntries; ++i) {
        uint64_t va = base + i * span;
        if (va >= hi || va + span <= lo) {
          continue;
        }
        const Pte& e = node.entries[i];
        if (level == 0) {
          if (e.present()) {
            fn(va, e, PageSize::k4K);
          }
        } else if (level == 1 && e.present() && e.huge()) {
          fn(va, e, PageSize::k2M);
        } else if (node.children[i]) {
          Visit(*node.children[i], level - 1, va);
        }
      }
    }
  };
  Rec rec{fn, lo, hi};
  rec.Visit(root, kPtLevels - 1, 0);
}

void PageTable::ForEachPresent(uint64_t lo, uint64_t hi,
                               const std::function<void(uint64_t, Pte, PageSize)>& fn) const {
  VisitPresent(*root_, lo, hi, fn);
}

bool PageTable::PruneNode(Node& node, int level, uint64_t base, uint64_t lo, uint64_t hi,
                          uint64_t* node_count) {
  bool freed = false;
  uint64_t span = SpanAt(level);
  for (uint64_t i = 0; i < kPtEntries; ++i) {
    uint64_t va = base + i * span;
    if (va >= hi || va + span <= lo || !node.children[i]) {
      continue;
    }
    Node& child = *node.children[i];
    if (level > 1) {
      freed |= PruneNode(child, level - 1, va, lo, hi, node_count);
    }
    bool empty = true;
    for (uint64_t j = 0; j < kPtEntries; ++j) {
      if (child.entries[j].present() || child.children[j]) {
        empty = false;
        break;
      }
    }
    if (empty) {
      node.children[i] = nullptr;
      node.entries[i] = Pte();
      if (node_count != nullptr) {
        --*node_count;
      }
      freed = true;
    }
  }
  return freed;
}

bool PageTable::PruneEmpty(uint64_t lo, uint64_t hi) {
  bool freed = PruneNode(*root_, kPtLevels - 1, 0, lo, hi, &node_count_);
  if (!replicas_.empty() && !skip_replica_propagation_) {
    for (Replica& rep : replicas_) {
      PruneNode(*rep.root, kPtLevels - 1, 0, lo, hi, /*node_count=*/nullptr);
    }
  }
  return freed;
}

std::unique_ptr<PageTable::Node> PageTable::CloneTree(const Node& src, int home_node) {
  auto n = std::make_unique<Node>();
  n->entries = src.entries;
  n->node = home_node;
  for (uint64_t i = 0; i < kPtEntries; ++i) {
    if (src.children[i]) {
      n->children[i] = CloneTree(*src.children[i], home_node);
    }
  }
  return n;
}

void PageTable::EnableReplication(int num_nodes) {
  if (num_nodes <= 1 || !replicas_.empty()) {
    return;
  }
  // Pin the primary to node 0 (it doubles as node 0's replica), retagging
  // any pre-replication first-touch homing.
  alloc_node_ = 0;
  struct Retag {
    static void Run(Node& n) {
      n.node = 0;
      for (uint64_t i = 0; i < kPtEntries; ++i) {
        if (n.children[i]) {
          Run(*n.children[i]);
        }
      }
    }
  };
  Retag::Run(*root_);
  replicas_.reserve(static_cast<size_t>(num_nodes - 1));
  for (int node = 1; node < num_nodes; ++node) {
    replicas_.push_back(Replica{CloneTree(*root_, node), node});
  }
}

uint64_t PageTable::replica_root_id(int node) const {
  assert(node >= 0 && (node == 0 || node <= static_cast<int>(replicas_.size())));
  // Deterministic, collision-free with other mms' (small) primary ids.
  return node == 0 ? root_id_ : root_id_ + (static_cast<uint64_t>(node) << 32);
}

bool PageTable::FindReplicaDivergence(uint64_t* va, int* node) const {
  for (const Replica& rep : replicas_) {
    bool diverged = false;
    uint64_t dva = 0;
    // Primary leaves must exist identically in the replica...
    VisitPresent(*root_, 0, ~0ULL, [&](uint64_t leaf_va, Pte pte, PageSize) {
      if (diverged) {
        return;
      }
      WalkResult w = WalkIn(rep.root.get(), leaf_va, -1);
      if (!w.present || !(w.pte == pte)) {
        diverged = true;
        dva = leaf_va;
      }
    });
    // ...and the replica must not hold extra (stale) leaves.
    if (!diverged) {
      VisitPresent(*rep.root, 0, ~0ULL, [&](uint64_t leaf_va, Pte pte, PageSize) {
        if (diverged) {
          return;
        }
        WalkResult w = WalkIn(root_.get(), leaf_va, -1);
        if (!w.present || !(w.pte == pte)) {
          diverged = true;
          dva = leaf_va;
        }
      });
    }
    if (diverged) {
      *va = dva;
      *node = rep.node;
      return true;
    }
  }
  return false;
}

}  // namespace tlbsim
