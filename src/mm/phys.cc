#include "src/mm/phys.h"

#include <cassert>
#include <cstddef>

namespace tlbsim {

uint64_t FrameAllocator::Alloc(uint64_t count) {
  assert(count >= 1);
  ++total_allocs_;
  for (std::size_t i = 0; i < free_.size(); ++i) {
    if (free_[i].second == count) {
      uint64_t pfn = free_[i].first;
      free_[i] = free_.back();
      free_.pop_back();
      refs_.emplace(pfn, Record{1, count});
      return pfn;
    }
  }
  uint64_t pfn = next_pfn_;
  next_pfn_ += count;
  refs_.emplace(pfn, Record{1, count});
  return pfn;
}

void FrameAllocator::Ref(uint64_t pfn) {
  auto it = refs_.find(pfn);
  assert(it != refs_.end() && "Ref of unallocated frame");
  ++it->second.refs;
}

uint64_t FrameAllocator::Unref(uint64_t pfn) {
  auto it = refs_.find(pfn);
  assert(it != refs_.end() && "Unref of unallocated frame");
  if (--it->second.refs == 0) {
    free_.emplace_back(pfn, it->second.count);
    refs_.erase(it);
    return 0;
  }
  return it->second.refs;
}

uint64_t FrameAllocator::RefCount(uint64_t pfn) const {
  auto it = refs_.find(pfn);
  return it == refs_.end() ? 0 : it->second.refs;
}

uint64_t FrameAllocator::allocated_frames() const {
  uint64_t n = 0;
  for (const auto& [pfn, rec] : refs_) {  // det-ok: order-independent (sums counts)
    n += rec.count;
  }
  return n;
}

}  // namespace tlbsim
