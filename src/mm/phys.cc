#include "src/mm/phys.h"

#include <cassert>
#include <cstddef>

namespace tlbsim {

void FrameAllocator::ConfigureNuma(int nodes, NumaPlacement placement) {
  assert(nodes >= 1);
  assert(refs_.empty() && free_.empty() && "ConfigureNuma after first allocation");
  placement_ = placement;
  node_next_.assign(static_cast<size_t>(nodes), 0);
  node_allocs_.assign(static_cast<size_t>(nodes), 0);
  for (int n = 0; n < nodes; ++n) {
    node_next_[static_cast<size_t>(n)] = NodeBase(n);
  }
}

FrameAllocator::RefMap::const_iterator FrameAllocator::Resolve(uint64_t pfn) const {
  auto it = refs_.upper_bound(pfn);
  if (it == refs_.begin()) {
    return refs_.end();
  }
  --it;  // greatest head <= pfn
  if (pfn < it->first + it->second.count) {
    return it;
  }
  return refs_.end();
}

FrameAllocator::RefMap::iterator FrameAllocator::Resolve(uint64_t pfn) {
  auto it = refs_.upper_bound(pfn);
  if (it == refs_.begin()) {
    return refs_.end();
  }
  --it;
  if (pfn < it->first + it->second.count) {
    return it;
  }
  return refs_.end();
}

void FrameAllocator::PushFree(uint64_t pfn, uint64_t count) {
  auto idx = static_cast<uint32_t>(free_.size());
  free_.emplace_back(pfn, count);
  free_index_[{NodeOf(pfn), count}].insert(idx);
}

uint64_t FrameAllocator::TakeFreeAt(uint32_t idx) {
  auto [pfn, count] = free_[idx];
  auto EraseIndex = [this](uint32_t i, uint64_t p, uint64_t c) {
    auto it = free_index_.find({NodeOf(p), c});
    assert(it != free_index_.end());
    it->second.erase(i);
    if (it->second.empty()) {
      free_index_.erase(it);
    }
  };
  EraseIndex(idx, pfn, count);
  auto last = static_cast<uint32_t>(free_.size() - 1);
  if (idx != last) {
    // Legacy swap-with-back removal: the moved entry's bucket index changes.
    auto [mpfn, mcount] = free_[last];
    EraseIndex(last, mpfn, mcount);
    free_[idx] = free_[last];
    free_index_[{NodeOf(mpfn), mcount}].insert(idx);
  }
  free_.pop_back();
  return pfn;
}

uint64_t FrameAllocator::AllocOn(int node_hint, uint64_t count) {
  assert(count >= 1);
  ++total_allocs_;
  int node = 0;
  if (nodes() > 1) {
    switch (placement_) {
      case NumaPlacement::kLocal:
      case NumaPlacement::kFirstTouch:
        node = node_hint;
        break;
      case NumaPlacement::kInterleave:
        node = static_cast<int>(interleave_next_++ % static_cast<uint64_t>(nodes()));
        break;
    }
    assert(node >= 0 && node < nodes());
  }
  ++node_allocs_[static_cast<size_t>(node)];
  // Lowest free-list index with a matching (node, count) — the entry the old
  // linear scan would have found first.
  auto it = free_index_.find({node, count});
  if (it != free_index_.end()) {
    uint64_t pfn = TakeFreeAt(*it->second.begin());
    refs_.emplace(pfn, Record{1, count});
    if (reuse_observer_) {
      reuse_observer_(pfn);
    }
    return pfn;
  }
  uint64_t pfn = node_next_[static_cast<size_t>(node)];
  node_next_[static_cast<size_t>(node)] += count;
  assert(nodes() == 1 || node_next_[static_cast<size_t>(node)] <= NodeBase(node) + kNodeSpan);
  refs_.emplace(pfn, Record{1, count});
  return pfn;
}

bool FrameAllocator::TryAllocSpecific(uint64_t pfn) {
  for (uint32_t i = 0; i < static_cast<uint32_t>(free_.size()); ++i) {
    if (free_[i].first == pfn && free_[i].second == 1) {
      ++total_allocs_;
      ++node_allocs_[static_cast<size_t>(NodeOf(pfn))];
      TakeFreeAt(i);
      refs_.emplace(pfn, Record{1, 1});
      return true;
    }
  }
  return false;
}

void FrameAllocator::Ref(uint64_t pfn) {
  auto it = Resolve(pfn);
  assert(it != refs_.end() && "Ref of unallocated frame");
  if (it == refs_.end()) {
    return;  // Release-mode: reject instead of corrupting refs_.end()
  }
  ++it->second.refs;
}

uint64_t FrameAllocator::Unref(uint64_t pfn) {
  auto it = Resolve(pfn);
  assert(it != refs_.end() && "Unref of unallocated frame");
  if (it == refs_.end()) {
    return 0;
  }
  if (--it->second.refs == 0) {
    PushFree(it->first, it->second.count);
    refs_.erase(it);
    return 0;
  }
  return it->second.refs;
}

uint64_t FrameAllocator::RefCount(uint64_t pfn) const {
  auto it = Resolve(pfn);
  return it == refs_.end() ? 0 : it->second.refs;
}

int FrameAllocator::NodeOf(uint64_t pfn) const {
  if (nodes() == 1 || pfn < first_pfn_) {
    return 0;
  }
  auto node = static_cast<int>((pfn - first_pfn_) / kNodeSpan);
  return node < nodes() ? node : nodes() - 1;
}

uint64_t FrameAllocator::allocated_frames() const {
  uint64_t n = 0;
  for (const auto& [pfn, rec] : refs_) {
    n += rec.count;
  }
  return n;
}

}  // namespace tlbsim
