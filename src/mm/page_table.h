// Software x86-64 4-level page tables (PML4 -> PDPT -> PD -> PT).
//
// Pure data structure: no virtual-time costs here. The hardware walker
// (src/hw/mmu.h) charges walk cycles and models the page-walk cache; the
// kernel charges PTE-update costs.
//
// 2MB huge pages are leaf entries at the PD level (PS bit set).
//
// NUMA: every paging-structure page carries a home memory node (set via
// set_alloc_node at creation — first-touch homing). The node-aware Walk
// overload reports how many visited levels lived on a remote node so the
// hardware walker can charge the extra DRAM latency.
//
// Replication (Mitosis-style, optimizations.h:pt_replication): one replica
// tree per memory node. The primary tree doubles as node 0's replica; nodes
// 1..n-1 get full copies homed entirely on their node. Every mutation
// (Map / SetPte / Unmap / PruneEmpty — including the hardware A/D assist)
// propagates to all replicas; the write observer fires once, on the primary.
// Node-aware walks go through the walker's local replica. The tlbcheck
// oracle verifies replica agreement at flush-acknowledgement time via
// FindReplicaDivergence.
#ifndef TLBSIM_SRC_MM_PAGE_TABLE_H_
#define TLBSIM_SRC_MM_PAGE_TABLE_H_

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/mm/pte.h"

namespace tlbsim {

class PageTable;

// Observation hook for the tlbcheck oracle (src/check/): sees every leaf
// mutation (Map / SetPte / Unmap) with the before and after entries. The
// observer pointer is null unless checking is enabled.
class PteWriteObserver {
 public:
  virtual ~PteWriteObserver() = default;
  virtual void OnPteWrite(const PageTable& pt, uint64_t va, Pte old_pte, Pte new_pte,
                          PageSize size) = 0;
};

class PageTable {
 public:
  // Draws root_id from a process-wide counter — fine for standalone tables
  // (tests, EPT pairs) whose id never feeds simulated state.
  PageTable();
  // Deterministic root id, required for tables whose id reaches simulated
  // quantities (MmStruct derives coherence-line addresses from it): parallel
  // sweep jobs must not observe a cross-job allocation order.
  explicit PageTable(uint64_t root_id);
  PageTable(const PageTable&) = delete;
  PageTable& operator=(const PageTable&) = delete;

  struct WalkResult {
    Pte pte;             // leaf entry (raw 0 if not present)
    PageSize size = PageSize::k4K;
    int levels_visited = 0;  // paging-structure levels touched by the walk
    int remote_levels = 0;   // of those, levels homed on a remote node
    bool leaf_remote = false;  // the level holding the final entry is remote
    bool present = false;
  };

  // Installs a leaf mapping. Intermediate tables are created on demand.
  // Precondition: `va` aligned to `size`; flags include kPresent.
  void Map(uint64_t va, uint64_t pfn, uint64_t flags, PageSize size = PageSize::k4K);

  // Replaces an existing leaf entry (mprotect / CoW break / clean). Returns
  // the previous entry. Precondition: a leaf exists at `va`.
  Pte SetPte(uint64_t va, Pte new_pte);

  // Removes the leaf mapping covering `va` if present; returns the old entry.
  Pte Unmap(uint64_t va);

  // Full software walk (no cost accounting).
  WalkResult Walk(uint64_t va) const { return Walk(va, -1); }

  // Node-aware walk: `walker_node` < 0 means NUMA-flat (no remote counting,
  // primary tree). Otherwise walks the walker's local replica when
  // replication is on, and fills remote_levels / leaf_remote against the
  // visited paging structures' home nodes.
  WalkResult Walk(uint64_t va, int walker_node) const;

  // Invokes `fn(va, pte, size)` for every present leaf in [lo, hi).
  void ForEachPresent(uint64_t lo, uint64_t hi,
                      const std::function<void(uint64_t, Pte, PageSize)>& fn) const;

  // Frees empty intermediate tables under [lo, hi). Returns true if any
  // paging-structure page was freed (drives the freed-tables flag that gates
  // early acknowledgement, paper §3.2).
  bool PruneEmpty(uint64_t lo, uint64_t hi);

  // Unique id standing in for the root's physical address (CR3 target).
  uint64_t root_id() const { return root_id_; }

  // Number of live paging-structure pages (root included; primary tree).
  uint64_t node_count() const { return node_count_; }

  // --- NUMA ---
  // Home node for paging-structure pages created by subsequent Maps
  // (first-touch: the faulting CPU's node). Ignored while replication is on
  // (the primary is pinned to node 0, replicas to their own node).
  void set_alloc_node(int node) {
    if (replicas_.empty()) {
      alloc_node_ = node;
    }
  }
  int alloc_node() const { return alloc_node_; }

  // --- replication (Mitosis) ---
  // Creates replicas for nodes 1..num_nodes-1 (deep copies of the current
  // tree, homed on their node) and pins the primary to node 0. Idempotent
  // for num_nodes <= 1.
  void EnableReplication(int num_nodes);
  bool replicated() const { return !replicas_.empty(); }
  // Total replica count including the primary (0 when replication is off).
  int replica_count() const {
    return replicas_.empty() ? 0 : static_cast<int>(replicas_.size()) + 1;
  }
  // Root id of node `node`'s replica (node 0 = the primary root id); feeds
  // the per-replica page-table cacheline the kernel charges on propagation.
  uint64_t replica_root_id(int node) const;

  // Fault injection (tests): stop propagating mutations to replicas,
  // making them diverge from the primary.
  void set_skip_replica_propagation(bool skip) { skip_replica_propagation_ = skip; }

  // Replica-coherence scan for the tlbcheck oracle: first leaf where some
  // replica disagrees with the primary (either direction). Returns true and
  // fills `va`/`node` on divergence.
  bool FindReplicaDivergence(uint64_t* va, int* node) const;

  // tlbcheck hook: observer sees every leaf write (null when checking off).
  void set_write_observer(PteWriteObserver* obs) { write_observer_ = obs; }

 private:
  struct Node {
    std::array<Pte, kPtEntries> entries{};
    std::array<std::unique_ptr<Node>, kPtEntries> children;
    int node = 0;  // home memory node of this paging-structure page
  };

  struct Replica {
    std::unique_ptr<Node> root;
    int node;  // memory node this replica serves (1..n-1)
  };

  // Walks down to the node holding the leaf for (va, size), creating
  // intermediate nodes (homed on `home_node`) if `create`. `node_count` is
  // bumped per created node when non-null (primary bookkeeping).
  static Node* NodeForIn(Node* root, uint64_t va, PageSize size, bool create, int home_node,
                         uint64_t* node_count);
  Node* NodeFor(uint64_t va, PageSize size, bool create) {
    return NodeForIn(root_.get(), va, size, create, alloc_node_, &node_count_);
  }

  static WalkResult WalkIn(const Node* root, uint64_t va, int walker_node);
  static void VisitPresent(const Node& root, uint64_t lo, uint64_t hi,
                           const std::function<void(uint64_t, Pte, PageSize)>& fn);
  static std::unique_ptr<Node> CloneTree(const Node& src, int home_node);
  static bool PruneNode(Node& node, int level, uint64_t base, uint64_t lo, uint64_t hi,
                        uint64_t* node_count);

  // Applies the leaf store to every replica (primary already written).
  void PropagateStore(uint64_t va, PageSize size, Pte new_pte);

  std::unique_ptr<Node> root_;
  uint64_t root_id_;
  uint64_t node_count_ = 1;
  int alloc_node_ = 0;
  std::vector<Replica> replicas_;
  bool skip_replica_propagation_ = false;
  PteWriteObserver* write_observer_ = nullptr;
};

}  // namespace tlbsim

#endif  // TLBSIM_SRC_MM_PAGE_TABLE_H_
