// Software x86-64 4-level page tables (PML4 -> PDPT -> PD -> PT).
//
// Pure data structure: no virtual-time costs here. The hardware walker
// (src/hw/mmu.h) charges walk cycles and models the page-walk cache; the
// kernel charges PTE-update costs.
//
// 2MB huge pages are leaf entries at the PD level (PS bit set).
#ifndef TLBSIM_SRC_MM_PAGE_TABLE_H_
#define TLBSIM_SRC_MM_PAGE_TABLE_H_

#include <array>
#include <cstdint>
#include <functional>
#include <memory>

#include "src/mm/pte.h"

namespace tlbsim {

class PageTable;

// Observation hook for the tlbcheck oracle (src/check/): sees every leaf
// mutation (Map / SetPte / Unmap) with the before and after entries. The
// observer pointer is null unless checking is enabled.
class PteWriteObserver {
 public:
  virtual ~PteWriteObserver() = default;
  virtual void OnPteWrite(const PageTable& pt, uint64_t va, Pte old_pte, Pte new_pte,
                          PageSize size) = 0;
};

class PageTable {
 public:
  // Draws root_id from a process-wide counter — fine for standalone tables
  // (tests, EPT pairs) whose id never feeds simulated state.
  PageTable();
  // Deterministic root id, required for tables whose id reaches simulated
  // quantities (MmStruct derives coherence-line addresses from it): parallel
  // sweep jobs must not observe a cross-job allocation order.
  explicit PageTable(uint64_t root_id);
  PageTable(const PageTable&) = delete;
  PageTable& operator=(const PageTable&) = delete;

  struct WalkResult {
    Pte pte;             // leaf entry (raw 0 if not present)
    PageSize size = PageSize::k4K;
    int levels_visited = 0;  // paging-structure levels touched by the walk
    bool present = false;
  };

  // Installs a leaf mapping. Intermediate tables are created on demand.
  // Precondition: `va` aligned to `size`; flags include kPresent.
  void Map(uint64_t va, uint64_t pfn, uint64_t flags, PageSize size = PageSize::k4K);

  // Replaces an existing leaf entry (mprotect / CoW break / clean). Returns
  // the previous entry. Precondition: a leaf exists at `va`.
  Pte SetPte(uint64_t va, Pte new_pte);

  // Removes the leaf mapping covering `va` if present; returns the old entry.
  Pte Unmap(uint64_t va);

  // Full software walk (no cost accounting).
  WalkResult Walk(uint64_t va) const;

  // Invokes `fn(va, pte, size)` for every present leaf in [lo, hi).
  void ForEachPresent(uint64_t lo, uint64_t hi,
                      const std::function<void(uint64_t, Pte, PageSize)>& fn) const;

  // Frees empty intermediate tables under [lo, hi). Returns true if any
  // paging-structure page was freed (drives the freed-tables flag that gates
  // early acknowledgement, paper §3.2).
  bool PruneEmpty(uint64_t lo, uint64_t hi);

  // Unique id standing in for the root's physical address (CR3 target).
  uint64_t root_id() const { return root_id_; }

  // Number of live paging-structure pages (root included).
  uint64_t node_count() const { return node_count_; }

  // tlbcheck hook: observer sees every leaf write (null when checking off).
  void set_write_observer(PteWriteObserver* obs) { write_observer_ = obs; }

 private:
  struct Node {
    std::array<Pte, kPtEntries> entries{};
    std::array<std::unique_ptr<Node>, kPtEntries> children;
  };

  // Walks down to the node holding the leaf for (va, size), creating
  // intermediate nodes if `create`.
  Node* NodeFor(uint64_t va, PageSize size, bool create);

  bool PruneNode(Node& node, int level, uint64_t base, uint64_t lo, uint64_t hi);

  std::unique_ptr<Node> root_;
  uint64_t root_id_;
  uint64_t node_count_ = 1;
  PteWriteObserver* write_observer_ = nullptr;
};

}  // namespace tlbsim

#endif  // TLBSIM_SRC_MM_PAGE_TABLE_H_
