// x2APIC model: IPI send/delivery with cluster-mode multicast.
//
// In x2APIC cluster mode CPUs are grouped in clusters of up to 16 logical
// CPUs; one ICR write can target any subset of ONE cluster (paper §2.2,
// [18,19]). Delivery latency depends on topological distance and carries
// jitter. The `use_multicast` switch enables the ablation from paper §2.3.2:
// systems evaluated without multicast IPIs (RadixVM, LATR) see far higher
// shootdown initiation costs.
#ifndef TLBSIM_SRC_HW_APIC_H_
#define TLBSIM_SRC_HW_APIC_H_

#include <cstdint>
#include <vector>

#include "src/cache/topology.h"
#include "src/hw/cost_model.h"
#include "src/hw/cpu.h"
#include "src/sim/engine.h"

namespace tlbsim {

class Apic {
 public:
  static constexpr int kClusterSize = 16;

  Apic(Engine* engine, const Topology& topo, const CostModel* costs)
      : engine_(engine), topo_(topo), costs_(costs) {}

  void set_cpus(std::vector<SimCpu*> cpus) { cpus_ = std::move(cpus); }
  void set_use_multicast(bool on) { use_multicast_ = on; }

  // Publishes a live wire-latency histogram ("apic.ipi_wire_cycles") into the
  // registry; the handle is cached so Deliver() stays off the map.
  void set_metrics(MetricsRegistry* m) {
    metrics_ = m;
    wire_hist_ = m != nullptr ? &m->histogram("apic.ipi_wire_cycles") : nullptr;
  }

  // Protocol sharding: banks the send-side counters (and, when a registry is
  // attached, the wire histogram — "apic.ipi_wire_cycles.socket<k>") by the
  // sender's socket so concurrent shard windows never share a counter word
  // and histogram reservoirs fill in a deterministic per-socket order.
  // banks <= 1 keeps the legacy flat shape and metric names.
  void ConfigureBanks(int banks, int cpus_per_bank);

  // Sends `vector` to every CPU in `targets`. The sender pays one ICR write
  // per addressed cluster (or per target when multicast is disabled) inline
  // on its local clock; deliveries are scheduled per-target with wire latency.
  void SendIpi(SimCpu& sender, const std::vector<int>& targets, int vector);

  // Sends an NMI to a single CPU.
  void SendNmi(SimCpu& sender, int target);

  struct Stats {
    uint64_t ipis_sent = 0;       // per-target deliveries
    uint64_t icr_writes = 0;      // sender-side ICR MSR writes
    uint64_t multicast_messages = 0;
  };
  // Summed over banks (one bank — the legacy flat counters — by default).
  Stats stats() const;
  void ResetStats() {  // tlblint: setup — between runs, engine quiescent
    for (Stats& b : banks_) {
      b = Stats{};
    }
  }

  // Protocol sharding: route each delivery onto the target CPU's event shard
  // (ScheduleOnCpu) instead of the sender's current timeline. Off by default:
  // the serial-protocol sharded mode relies on deliveries landing on the
  // sender's timeline (the serial queue) exactly as the legacy engine did.
  void set_shard_delivery(bool on) { shard_delivery_ = on; }

 private:
  Cycles WireLatency(int from, int to) const;
  void Deliver(SimCpu& sender, int target, int vector);
  // tlblint: shard-local — resolves into the sending cpu's own bank
  Stats& BankFor(int cpu) {
    if (banks_.size() == 1) return banks_[0];
    size_t b = static_cast<size_t>(cpu) / static_cast<size_t>(cpus_per_bank_);
    return banks_[b < banks_.size() ? b : banks_.size() - 1];
  }
  // tlblint: shard-local — resolves into the sending cpu's own bank
  Histogram* WireHistFor(int cpu) {
    if (wire_hists_.empty()) return wire_hist_;
    size_t b = static_cast<size_t>(cpu) / static_cast<size_t>(cpus_per_bank_);
    return wire_hists_[b < wire_hists_.size() ? b : wire_hists_.size() - 1];
  }

  Engine* engine_;
  Topology topo_;
  const CostModel* costs_;
  std::vector<SimCpu*> cpus_;
  bool use_multicast_ = true;
  bool shard_delivery_ = false;
  std::vector<Stats> banks_{1};         // tlblint: banked(socket)
  int cpus_per_bank_ = 1 << 30;
  MetricsRegistry* metrics_ = nullptr;
  Histogram* wire_hist_ = nullptr;
  std::vector<Histogram*> wire_hists_;  // tlblint: banked(socket) per-socket, shard mode only
};

}  // namespace tlbsim

#endif  // TLBSIM_SRC_HW_APIC_H_
