// x2APIC model: IPI send/delivery with cluster-mode multicast.
//
// In x2APIC cluster mode CPUs are grouped in clusters of up to 16 logical
// CPUs; one ICR write can target any subset of ONE cluster (paper §2.2,
// [18,19]). Delivery latency depends on topological distance and carries
// jitter. The `use_multicast` switch enables the ablation from paper §2.3.2:
// systems evaluated without multicast IPIs (RadixVM, LATR) see far higher
// shootdown initiation costs.
#ifndef TLBSIM_SRC_HW_APIC_H_
#define TLBSIM_SRC_HW_APIC_H_

#include <cstdint>
#include <vector>

#include "src/cache/topology.h"
#include "src/hw/cost_model.h"
#include "src/hw/cpu.h"
#include "src/sim/engine.h"

namespace tlbsim {

class Apic {
 public:
  static constexpr int kClusterSize = 16;

  Apic(Engine* engine, const Topology& topo, const CostModel* costs)
      : engine_(engine), topo_(topo), costs_(costs) {}

  void set_cpus(std::vector<SimCpu*> cpus) { cpus_ = std::move(cpus); }
  void set_use_multicast(bool on) { use_multicast_ = on; }

  // Publishes a live wire-latency histogram ("apic.ipi_wire_cycles") into the
  // registry; the handle is cached so Deliver() stays off the map.
  void set_metrics(MetricsRegistry* m) {
    wire_hist_ = m != nullptr ? &m->histogram("apic.ipi_wire_cycles") : nullptr;
  }

  // Sends `vector` to every CPU in `targets`. The sender pays one ICR write
  // per addressed cluster (or per target when multicast is disabled) inline
  // on its local clock; deliveries are scheduled per-target with wire latency.
  void SendIpi(SimCpu& sender, const std::vector<int>& targets, int vector);

  // Sends an NMI to a single CPU.
  void SendNmi(SimCpu& sender, int target);

  struct Stats {
    uint64_t ipis_sent = 0;       // per-target deliveries
    uint64_t icr_writes = 0;      // sender-side ICR MSR writes
    uint64_t multicast_messages = 0;
  };
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats{}; }

 private:
  Cycles WireLatency(int from, int to) const;
  void Deliver(SimCpu& sender, int target, int vector);

  Engine* engine_;
  Topology topo_;
  const CostModel* costs_;
  std::vector<SimCpu*> cpus_;
  bool use_multicast_ = true;
  Stats stats_;
  Histogram* wire_hist_ = nullptr;
};

}  // namespace tlbsim

#endif  // TLBSIM_SRC_HW_APIC_H_
