// SimCpu: one simulated logical CPU.
//
// A SimCpu owns a local virtual clock, the architectural state the paper's
// protocols manipulate (active PCID / address-space root, interrupt-enable
// flag, user/kernel mode, TLB + page-walk cache), and the interrupt
// machinery. Simulated programs are coroutines that consume virtual time via
// two awaitables:
//
//   co_await cpu.Execute(cycles)   -- interruptible busy work; if an IPI/NMI
//                                     arrives mid-delay the handler runs on
//                                     this CPU's timeline, then the remaining
//                                     cycles complete.
//   co_await cpu.WaitFlag(flag)    -- interruptible wait; resumes when the
//                                     flag is set OR spuriously after any
//                                     interrupt was handled (callers re-check
//                                     in a loop, exactly like a spin loop).
//
// Small costs (cacheline accesses, TLB walks) are charged inline via
// AccessLine()/AdvanceInline() without suspension: the local clock may run
// ahead of the engine clock; every outward-visible action is scheduled at
// local time, preserving causality.
//
// Invariant: at most one wait is "armed" per CPU at any instant, because
// preemption disarms the interrupted wait before the handler chain starts,
// and handlers themselves only arm one wait at a time (nested preemption is
// NMI-only, which disarms the handler's wait first).
#ifndef TLBSIM_SRC_HW_CPU_H_
#define TLBSIM_SRC_HW_CPU_H_

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>

#include "src/cache/coherence.h"
#include "src/hw/cost_model.h"
#include "src/hw/tlb.h"
#include "src/sim/engine.h"
#include "src/sim/flag.h"
#include "src/sim/metrics.h"
#include "src/sim/rng.h"
#include "src/sim/task.h"
#include "src/sim/trace.h"

namespace tlbsim {

class PageTable;
class HwCheckSink;

// Interrupt vectors used by the simulation.
inline constexpr int kNmiVector = 2;
inline constexpr int kCallFunctionVector = 0xfb;  // Linux CALL_FUNCTION_VECTOR
inline constexpr int kRescheduleVector = 0xfd;

class SimCpu {
 public:
  using IrqHandler = std::function<Co<void>(SimCpu&)>;

  struct Stats {
    uint64_t irqs_handled = 0;
    uint64_t nmis_handled = 0;
    Cycles cycles_in_irq = 0;  // total wall time stolen from the interrupted context
    uint64_t ipis_received = 0;
  };

  // `numa_node` < 0 means NUMA-flat (default): no remote charges anywhere
  // and no NUMA metrics registered, preserving byte-identical reports.
  SimCpu(int id, Engine* engine, CoherenceModel* coherence, const CostModel* costs, Rng rng,
         Trace* trace = nullptr, MetricsRegistry* metrics = nullptr, int numa_node = -1);
  SimCpu(const SimCpu&) = delete;
  SimCpu& operator=(const SimCpu&) = delete;

  int id() const { return id_; }
  // Memory node this CPU sits on; -1 when the machine is NUMA-flat.
  int numa_node() const { return numa_node_; }
  Cycles now() const { return now_; }
  Engine* engine() { return engine_; }
  const CostModel& costs() const { return *costs_; }
  Rng& rng() { return rng_; }
  Tlb& tlb() { return tlb_; }
  Tlb& itlb() { return itlb_; }
  PageWalkCache& pwc() { return pwc_; }
  Stats& stats() { return stats_; }
  MetricsRegistry* metrics() { return metrics_; }

  // Live MMU accounting (called from Mmu::Translate on TLB misses); no-op
  // when the CPU was built without a registry (unit-test rigs).
  void NotePageWalk(Cycles walk_cost) {
    if (mmu_walks_ != nullptr) {
      mmu_walks_->Inc(id_);
      mmu_walk_cycles_->Inc(id_, static_cast<uint64_t>(walk_cost));
    }
  }

  // NUMA accounting; handles exist only on NUMA-enabled machines, so these
  // are no-ops (and the counters absent from reports) when NUMA is off.
  void NoteRemoteWalk(Cycles extra_cost) {
    if (numa_remote_walks_ != nullptr) {
      numa_remote_walks_->Inc(id_);
      numa_remote_walk_cycles_->Inc(id_, static_cast<uint64_t>(extra_cost));
    }
  }
  void NoteRemoteDram() {
    if (numa_remote_dram_ != nullptr) {
      numa_remote_dram_->Inc(id_);
    }
  }

  // --- architectural TLB flushes ---
  // These mirror the x86 instructions, which invalidate BOTH the data and
  // instruction TLBs plus the relevant paging-structure-cache entries. The
  // §4.1 CoW trick deliberately bypasses these: a data access can displace a
  // DTLB entry but never an ITLB entry, hence the executable-PTE guard.
  // Each returns true if fracturing degraded the flush to a full flush.
  bool ArchInvlPg(uint16_t pcid, uint64_t va);
  bool ArchInvPcidAddr(uint16_t pcid, uint64_t va);
  void ArchFlushPcid(uint16_t pcid);
  void ArchFlushAll(bool keep_globals);

  // --- architectural state ---
  bool user_mode() const { return user_mode_; }
  void set_user_mode(bool u) { user_mode_ = u; }
  bool irqs_enabled() const { return irqs_enabled_; }
  // Re-enabling with deliverable IRQs pending schedules a delivery kick, so
  // interrupts masked across a code region are never stranded even if the
  // program ends without suspending again.
  void set_irqs_enabled(bool e);
  bool in_irq() const { return irq_depth_ > 0; }
  bool in_nmi() const { return nmi_depth_ > 0; }

  uint16_t active_pcid() const { return active_pcid_; }
  PageTable* active_pt() const { return active_pt_; }
  void LoadAddressSpace(PageTable* pt, uint16_t pcid) {
    active_pt_ = pt;
    active_pcid_ = pcid;
  }

  // Extra cost for IRQ entry from user mode (PTI trampoline); installed by
  // the kernel when running in "safe" mode.
  void set_irq_entry_extra_user(Cycles c) { irq_entry_extra_user_ = c; }

  // Kernel hooks around interrupts taken from user mode:
  //  - entry hook: models the PTI trampoline loading the kernel PCID;
  //  - return hook: models the exit path (deferred user-space TLB flushes,
  //    §3.4, then the user PCID reload). Both run on this CPU's timeline and
  //    count toward the interrupted context's stolen cycles.
  void set_kernel_entry_hook(std::function<void(SimCpu&)> hook) {
    kernel_entry_hook_ = std::move(hook);
  }
  void set_return_to_user_hook(std::function<Co<void>(SimCpu&)> hook) {
    return_to_user_hook_ = std::move(hook);
  }

  // --- interrupt plumbing ---
  void RegisterIrqHandler(int vector, IrqHandler handler);

  // Delivers an interrupt to this CPU at virtual time `arrival` (callers
  // schedule an engine event; RaiseIrq must run AT that event).
  void RaiseIrq(int vector);

  // --- time consumption ---
  struct ExecAwaitable;
  struct FlagAwaitable;

  // Interruptible busy work of `c` cycles.
  ExecAwaitable Execute(Cycles c);

  // Interruptible wait; wakes when `f` is set or spuriously after interrupt
  // handling. await_resume() returns f.is_set().
  FlagAwaitable WaitFlag(SimFlag& f);

  // Inline (non-suspending) costs.
  Cycles AccessLine(LineId line, AccessType type);
  void AdvanceInline(Cycles c) {
    assert(c >= 0);
    now_ += c;
  }

  // Starts a detached program on this CPU at max(local, engine) time.
  void Spawn(SimTask task);

  // Schedules `fn` on this CPU's timeline and tracks it so the idle-delivery
  // logic knows the CPU is about to run (not truly idle).
  void ScheduleResume(InlineFn fn);

  // Protocol sharding: when set, this CPU's self-schedules (Spawn, resume
  // kicks, Execute completions) land on the event shard that owns the CPU via
  // ScheduleOnCpu instead of the current timeline. Once a program runs inside
  // its shard, everything it schedules follows it there, so socket-confined
  // work never touches the serial queue. On an unsharded engine
  // ScheduleOnCpu degenerates to Schedule, making the flag a no-op.
  void set_shard_queue(bool on) { shard_queue_ = on; }
  bool shard_queue() const { return shard_queue_; }

  void TracePhase(const char* tag) {
    if (trace_ != nullptr) {
      trace_->Record(now_, id_, tag);
    }
  }
  Trace* trace() { return trace_; }

  // tlbcheck hardware sink (src/check/); null when checking is off.
  void set_check_sink(HwCheckSink* sink) { check_sink_ = sink; }
  HwCheckSink* check_sink() const { return check_sink_; }

  // --- internals shared with the awaitables ---
  struct ArmedWait {
    virtual ~ArmedWait() = default;
    // Disarm due to an interrupt at time `at`; the wait will be Rearm()ed
    // after the handler chain drains.
    virtual void Preempt(Cycles at) = 0;
    virtual void Rearm() = 0;
  };

 private:
  friend struct ExecAwaitable;
  friend struct FlagAwaitable;

  bool HasDeliverablePending() const;
  bool CanDeliver(int vector) const;
  // Schedules an idle-delivery check at the current time.
  void KickPendingDelivery();
  // Runs deliverable pending IRQs, then Rearm()s `after` (which may be null).
  void DeliverPending(ArmedWait* after);
  void DrainIrqs();
  SimTask IrqTask(int vector);
  void TryPreempt();

  void set_armed(ArmedWait* w) { armed_ = w; }
  ArmedWait* armed() { return armed_; }
  void set_now(Cycles t) {
    assert(t >= now_);
    now_ = t;
  }

  int id_;
  Engine* engine_;
  CoherenceModel* coherence_;
  const CostModel* costs_;
  Rng rng_;
  Trace* trace_;
  MetricsRegistry* metrics_;
  PerCpuCounter* mmu_walks_ = nullptr;        // cached handles (hot path)
  PerCpuCounter* mmu_walk_cycles_ = nullptr;
  PerCpuCounter* numa_remote_walks_ = nullptr;        // NUMA machines only
  PerCpuCounter* numa_remote_walk_cycles_ = nullptr;
  PerCpuCounter* numa_remote_dram_ = nullptr;
  int numa_node_ = -1;

  Tlb tlb_;   // data TLB (+ second level)
  Tlb itlb_;  // instruction TLB (smaller)
  PageWalkCache pwc_;

  Cycles now_ = 0;
  bool user_mode_ = true;
  bool irqs_enabled_ = true;
  int irq_depth_ = 0;
  int nmi_depth_ = 0;
  Cycles irq_entry_extra_user_ = 0;

  uint16_t active_pcid_ = 0;
  PageTable* active_pt_ = nullptr;

  std::map<int, IrqHandler> handlers_;
  std::function<void(SimCpu&)> kernel_entry_hook_;
  std::function<Co<void>(SimCpu&)> return_to_user_hook_;
  std::deque<int> pending_irqs_;
  ArmedWait* armed_ = nullptr;
  std::vector<ArmedWait*> post_irq_waiters_;
  int scheduled_resumes_ = 0;  // continuations queued for this CPU
  bool shard_queue_ = false;   // route self-schedules to this CPU's shard
  HwCheckSink* check_sink_ = nullptr;

  Stats stats_;
};

// ----- awaitables -----

struct SimCpu::ExecAwaitable final : SimCpu::ArmedWait {
  SimCpu* cpu;
  Cycles remaining;
  std::coroutine_handle<> cont;
  Engine::EventId event = Engine::kInvalidEvent;
  Cycles started = 0;
  bool armed_here = false;

  ExecAwaitable(SimCpu* c, Cycles dur) : cpu(c), remaining(dur < 0 ? 0 : dur) {}

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h);
  void await_resume() const noexcept {}

  void Arm();
  void Fire();
  void Preempt(Cycles at) override;
  void Rearm() override;
};

struct SimCpu::FlagAwaitable final : SimCpu::ArmedWait {
  SimCpu* cpu;
  SimFlag* flag;
  std::coroutine_handle<> cont;
  Cycles started = 0;
  bool armed_here = false;
  // Lifetime guard shared with the registered waiter callback: a Set() can
  // schedule the callback while a preemption disarms (and later destroys)
  // this awaitable; the callback must then be a no-op, not a use-after-free.
  std::shared_ptr<bool> alive;
  SimFlag::WaiterToken token = 0;

  FlagAwaitable(SimCpu* c, SimFlag* f) : cpu(c), flag(f) {}

  bool await_ready() noexcept;
  void await_suspend(std::coroutine_handle<> h);
  bool await_resume() const noexcept { return flag->is_set(); }

  void Arm();
  void Fire(Cycles set_time);
  void Preempt(Cycles at) override;
  void Rearm() override;
};

inline SimCpu::ExecAwaitable SimCpu::Execute(Cycles c) { return ExecAwaitable(this, c); }
inline SimCpu::FlagAwaitable SimCpu::WaitFlag(SimFlag& f) { return FlagAwaitable(this, &f); }

}  // namespace tlbsim

#endif  // TLBSIM_SRC_HW_CPU_H_
