// Central cycle-cost table for the simulated machine.
//
// Values approximate a Skylake-era Xeon (the paper's Dell R630 testbed) and
// are taken from the figures the paper itself cites where available:
//   - ~200 cycles for a local INVLPG (paper §2.2, [7,17]);
//   - INVPCID individual-address slower than INVLPG (paper §3.4, [23]);
//   - IPI delivery "potentially over 1000 cycles" (paper §3.2);
//   - full shootdowns costing several thousand cycles (§2.2).
// Everything is tunable so experiments can ablate the model.
#ifndef TLBSIM_SRC_HW_COST_MODEL_H_
#define TLBSIM_SRC_HW_COST_MODEL_H_

#include <algorithm>

#include "src/cache/coherence.h"
#include "src/sim/time.h"

namespace tlbsim {

struct CostModel {
  // --- TLB manipulation instructions ---
  Cycles invlpg = 200;             // invalidate one PTE, current PCID
  Cycles invpcid_addr = 330;       // INVPCID individual-address (inactive PCID)
  Cycles invpcid_single_ctx = 450; // INVPCID single-context (flush one PCID)
  Cycles cr3_write_flush = 600;    // CR3 write without NOFLUSH: full non-global flush
  Cycles cr3_switch = 220;         // CR3 write with NOFLUSH bit (PCID switch)
  Cycles lfence = 30;
  Cycles pte_update = 14;          // one atomic PTE store (plus cacheline cost)

  // --- page walks ---
  Cycles walk_step = 25;           // one paging-structure level
  int walk_levels = 4;             // PML4..PT
  Cycles walk_pwc_hit = 50;        // walk served by the page-walk cache (leaf levels only)

  // --- kernel entry/exit ---
  Cycles syscall_entry = 150;
  Cycles syscall_exit = 130;
  Cycles pti_entry_extra = 260;    // trampoline + CR3 switch on entry (safe mode)
  Cycles pti_exit_extra = 260;     // CR3 switch back on exit (safe mode)
  Cycles irq_entry_kernel = 350;   // vector dispatch when interrupted in kernel
  Cycles irq_entry_user = 480;     // interrupted in user mode (mode switch)
  Cycles irq_exit = 300;
  Cycles nmi_entry = 900;
  Cycles nmi_exit = 700;
  Cycles nmi_uaccess_check = 25;   // the nmi_uaccess_okay()-style check (§3.2)

  // --- IPIs (x2APIC) ---
  Cycles ipi_icr_write = 100;      // one ICR MSR write (per multicast cluster message)
  Cycles ipi_wire_smt = 400;       // delivery latency to an SMT sibling
  Cycles ipi_wire_same_socket = 800;
  Cycles ipi_wire_cross_socket = 1500;

  // --- kernel software paths ---
  Cycles flush_dispatch = 220;     // compute target cpumask, build flush_tlb_info
  Cycles smp_enqueue = 60;         // llist_add of a CFD onto a remote CSQ (plus cacheline)
  Cycles handler_body = 80;        // flush_tlb_func bookkeeping before any INVLPG
  Cycles context_switch = 900;
  Cycles vma_op_body = 240;        // find_vma + bookkeeping inside mm syscalls
  Cycles zap_per_page = 45;        // per-page unmap/protect software work
  Cycles pagefault_entry = 520;    // #PF exception entry + bookkeeping
  Cycles pagefault_exit = 380;
  Cycles pagefault_body = 320;     // vma lookup, policy checks
  Cycles copy_page = 1100;         // 4KB page copy (CoW break)
  Cycles cow_atomic_fixup = 60;    // the lock-prefixed no-op RMW of §4.1
  Cycles sem_op = 40;              // mmap_sem fast-path acquire/release
  Cycles pmem_writeback = 1000;    // CPU-side cost to write one dirty 4KB page
  Cycles pmem_channel_occupancy = 1200;  // shared-bandwidth serialization per page
  // Split-layout only: flush_tlb_info lives on the initiator's 4KB-mapped
  // stack, costing extra dTLB pressure vs 2MB-mapped globals (§3.3 item 2).
  Cycles stack_info_tlb_penalty = 35;

  // --- queue flush backend (charmos-style async shootdown) ---
  // Protocol knobs: bounded per-responder address ring, initiator spin with
  // exponential backoff between IPI resends. Constants mirror charmos
  // (TLB_QUEUE_SIZE / INITIAL_SPIN / MAX_RETRIES / BACKOFF_MULT).
  int queue_ring_entries = 64;       // per-responder ring capacity (addresses)
  Cycles queue_initial_spin = 2000;  // first ack-wait budget before a resend
  int queue_max_retries = 6;         // IPI resends before the initiator gives up
  int queue_backoff_mult = 4;        // spin budget multiplier per retry round
  // Cycle costs for the queue protocol's software paths.
  Cycles queue_enqueue = 60;         // one ring slot store (plus cacheline)
  Cycles queue_spin_poll = 100;      // one ack_gen poll iteration while spinning
  Cycles queue_ack_publish = 50;     // responder's tail/ack_gen publication window

  // --- NUMA (charged only when MachineConfig::numa.nodes > 1) ---
  // Remote-DRAM penalties follow the ~1.4-2x local/remote latency ratio of
  // 2-socket Xeons. Page-walk steps hit DRAM on PWC misses, so a walk
  // through remote paging structures pays per fetched level (the Mitosis
  // motivation); replica maintenance pays a store per extra replica.
  Cycles walk_step_remote_extra = 90;  // per paging-structure fetch from a remote node
  Cycles dram_remote_access = 120;     // data access to a frame on a remote node
  Cycles replica_pte_update = 40;      // per-replica PTE propagation store

  // --- cacheline coherence ---
  CacheCosts cache;

  // Fractional jitter applied to wire/entry costs when an Rng is supplied.
  double jitter_frac = 0.03;

  // Conservative lookahead for the sharded event engine (src/sim/engine.h):
  // the cheapest cross-socket interaction — an APIC IPI on the wire or a
  // cache-line transfer across the interconnect — bounds how soon one
  // socket's events can affect another's, so every shard may safely run
  // `lookahead` cycles past the global minimum event time. Discounted by the
  // jitter band's lower edge since jittered wire costs can undershoot the
  // nominal value.
  Cycles CrossShardLookahead() const {
    Cycles wire = std::min(ipi_wire_cross_socket, cache.cross_socket_transfer);
    auto floor = static_cast<Cycles>(static_cast<double>(wire) * (1.0 - jitter_frac));
    return std::max<Cycles>(1, floor);
  }

  // Lookahead when the protocol state itself is sharded per socket
  // (MachineConfig::shard_protocol): the coherence directory is banked by the
  // acting CPU's socket and mm_cpumask words are per-socket, so a cache-line
  // transfer no longer crosses shard boundaries. The only remaining
  // cross-socket edge is an explicit IPI on the wire, whose latency bounds
  // how soon one socket can affect another. Same jitter discount as above.
  Cycles ProtocolShardLookahead() const {
    auto floor = static_cast<Cycles>(static_cast<double>(ipi_wire_cross_socket) *
                                     (1.0 - jitter_frac));
    return std::max<Cycles>(1, floor);
  }
};

}  // namespace tlbsim

#endif  // TLBSIM_SRC_HW_COST_MODEL_H_
