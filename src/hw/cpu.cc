#include "src/hw/cpu.h"

#include <algorithm>
#include <utility>

#include "src/hw/check_sink.h"

namespace tlbsim {

namespace {
// Skylake-ish ITLB: far smaller than the unified DTLB/STLB.
TlbGeometry ItlbGeometry() {
  TlbGeometry geo;
  geo.sets_4k = 16;
  geo.ways_4k = 8;
  geo.sets_2m = 2;
  geo.ways_2m = 4;
  return geo;
}
}  // namespace

SimCpu::SimCpu(int id, Engine* engine, CoherenceModel* coherence, const CostModel* costs, Rng rng,
               Trace* trace, MetricsRegistry* metrics, int numa_node)
    : id_(id),
      engine_(engine),
      coherence_(coherence),
      costs_(costs),
      rng_(rng),
      trace_(trace),
      metrics_(metrics),
      numa_node_(numa_node),
      itlb_(ItlbGeometry()) {
  if (metrics_ != nullptr) {
    mmu_walks_ = &metrics_->percpu("mmu.walks");
    mmu_walk_cycles_ = &metrics_->percpu("mmu.walk_cycles");
    // NUMA counters are registered only on NUMA machines: the registry
    // serializes every registered metric, and flat-machine reports must stay
    // byte-identical to the pre-NUMA simulator.
    if (numa_node_ >= 0) {
      numa_remote_walks_ = &metrics_->percpu("numa.remote_walks");
      numa_remote_walk_cycles_ = &metrics_->percpu("numa.remote_walk_cycles");
      numa_remote_dram_ = &metrics_->percpu("numa.remote_dram_accesses");
    }
  }
}

bool SimCpu::ArchInvlPg(uint16_t pcid, uint64_t va) {
  bool degraded = tlb_.InvlPg(pcid, va);
  degraded |= itlb_.InvlPg(pcid, va);
  pwc_.FlushAll();  // INVLPG drops the whole paging-structure cache
  return degraded;
}

bool SimCpu::ArchInvPcidAddr(uint16_t pcid, uint64_t va) {
  bool degraded = tlb_.InvPcidAddr(pcid, va);
  degraded |= itlb_.InvPcidAddr(pcid, va);
  pwc_.FlushAddress(pcid, va);  // only this address's PWC entry (§3.4)
  return degraded;
}

void SimCpu::ArchFlushPcid(uint16_t pcid) {
  tlb_.FlushPcid(pcid);
  itlb_.FlushPcid(pcid);
  pwc_.FlushPcid(pcid);
}

void SimCpu::ArchFlushAll(bool keep_globals) {
  tlb_.FlushAll(keep_globals);
  itlb_.FlushAll(keep_globals);
  pwc_.FlushAll();
}

void SimCpu::RegisterIrqHandler(int vector, IrqHandler handler) {
  handlers_[vector] = std::move(handler);
}

Cycles SimCpu::AccessLine(LineId line, AccessType type) {
  Cycles c = coherence_->Access(id_, line, type);
  now_ += c;
  return c;
}

void SimCpu::set_irqs_enabled(bool e) {
  irqs_enabled_ = e;
  if (e && armed_ == nullptr && HasDeliverablePending()) {
    KickPendingDelivery();
  }
}

void SimCpu::KickPendingDelivery() {
  ScheduleResume([this] {
    if (armed_ == nullptr && post_irq_waiters_.empty() && scheduled_resumes_ == 0 &&
        HasDeliverablePending()) {
      now_ = std::max(now_, engine_->now());
      DeliverPending(nullptr);
    }
  });
}

void SimCpu::Spawn(SimTask task) {
  Cycles at = std::max(now_, engine_->now());
  now_ = at;
  auto handle = task.Release();
  // Chain a delivery kick onto task completion: a program that ends with
  // masked-then-queued IRQs must not strand them.
  InlineFn prev = std::move(handle.promise().on_done);
  handle.promise().on_done = [this, prev = std::move(prev)] {
    if (prev) {
      prev();
    }
    if (armed_ == nullptr && HasDeliverablePending()) {
      KickPendingDelivery();
    }
  };
  ++scheduled_resumes_;
  auto resume = [this, handle] {
    --scheduled_resumes_;
    handle.resume();
  };
  if (shard_queue_) {
    engine_->ScheduleOnCpu(id_, at, std::move(resume));
  } else {
    engine_->Schedule(at, std::move(resume));
  }
}

void SimCpu::ScheduleResume(InlineFn fn) {
  Cycles at = std::max(now_, engine_->now());
  ++scheduled_resumes_;
  auto resume = [this, fn = std::move(fn)] {
    --scheduled_resumes_;
    fn();
  };
  if (shard_queue_) {
    engine_->ScheduleOnCpu(id_, at, std::move(resume));
  } else {
    engine_->Schedule(at, std::move(resume));
  }
}

bool SimCpu::CanDeliver(int vector) const {
  if (vector == kNmiVector) {
    return nmi_depth_ == 0;
  }
  return irqs_enabled_;
}

bool SimCpu::HasDeliverablePending() const {
  for (int v : pending_irqs_) {
    if (CanDeliver(v)) {
      return true;
    }
  }
  return false;
}

void SimCpu::RaiseIrq(int vector) {
  ++stats_.ipis_received;
  pending_irqs_.push_back(vector);
  if (armed_ != nullptr) {
    TryPreempt();
    return;
  }
  // No armed wait: the CPU is either mid-drain (post_irq_waiters_ nonempty),
  // about to resume (scheduled_resumes_ > 0) — both handle pending IRQs at
  // their next suspension — or truly idle, in which case it services the
  // interrupt directly, as real idle cores do.
  if (post_irq_waiters_.empty() && scheduled_resumes_ == 0 && HasDeliverablePending()) {
    now_ = std::max(now_, engine_->now());
    DeliverPending(nullptr);
  }
}

void SimCpu::TryPreempt() {
  if (armed_ == nullptr || !HasDeliverablePending()) {
    return;
  }
  ArmedWait* w = armed_;
  armed_ = nullptr;
  w->Preempt(engine_->now());
  DeliverPending(w);
}

void SimCpu::DeliverPending(ArmedWait* after) {
  post_irq_waiters_.push_back(after);
  DrainIrqs();
}

void SimCpu::DrainIrqs() {
  // Pick the first deliverable pending vector, NMIs first.
  auto pick = [this]() -> std::optional<int> {
    for (auto it = pending_irqs_.begin(); it != pending_irqs_.end(); ++it) {
      if (*it == kNmiVector && CanDeliver(*it)) {
        int v = *it;
        pending_irqs_.erase(it);
        return v;
      }
    }
    for (auto it = pending_irqs_.begin(); it != pending_irqs_.end(); ++it) {
      if (CanDeliver(*it)) {
        int v = *it;
        pending_irqs_.erase(it);
        return v;
      }
    }
    return std::nullopt;
  };

  std::optional<int> vector = pick();
  if (!vector.has_value()) {
    ArmedWait* w = post_irq_waiters_.back();
    post_irq_waiters_.pop_back();
    if (w != nullptr) {
      w->Rearm();
    }
    return;
  }
  SimTask task = IrqTask(*vector);
  task.set_on_done([this] { DrainIrqs(); });
  Spawn(std::move(task));
}

SimTask SimCpu::IrqTask(int vector) {
  bool is_nmi = vector == kNmiVector;
  bool from_user = user_mode_;
  Cycles begin = now_;

  ++irq_depth_;
  if (is_nmi) {
    ++nmi_depth_;
  }
  if (check_sink_ != nullptr) {
    check_sink_->OnIrqEnter(*this, vector);
  }
  bool prev_if = irqs_enabled_;
  bool prev_user = user_mode_;
  irqs_enabled_ = false;
  user_mode_ = false;

  Cycles entry;
  if (is_nmi) {
    entry = costs_->nmi_entry;
  } else if (from_user) {
    entry = costs_->irq_entry_user + irq_entry_extra_user_;
  } else {
    entry = costs_->irq_entry_kernel;
  }
  co_await Execute(rng_.Jitter(entry, costs_->jitter_frac));
  if (from_user && !is_nmi && kernel_entry_hook_) {
    kernel_entry_hook_(*this);
  }
  TracePhase(is_nmi ? "nmi: enter" : "irq: enter handler");

  auto it = handlers_.find(vector);
  if (it != handlers_.end()) {
    co_await it->second(*this);
  }

  if (from_user && !is_nmi && return_to_user_hook_) {
    co_await return_to_user_hook_(*this);
  }
  co_await Execute(rng_.Jitter(is_nmi ? costs_->nmi_exit : costs_->irq_exit, costs_->jitter_frac));
  TracePhase(is_nmi ? "nmi: exit" : "irq: exit");

  user_mode_ = prev_user;
  irqs_enabled_ = prev_if;
  if (check_sink_ != nullptr) {
    check_sink_->OnIrqExit(*this, vector);
  }
  if (is_nmi) {
    --nmi_depth_;
  }
  --irq_depth_;

  stats_.cycles_in_irq += now_ - begin;
  if (is_nmi) {
    ++stats_.nmis_handled;
  } else {
    ++stats_.irqs_handled;
  }
}

// ----- ExecAwaitable -----

void SimCpu::ExecAwaitable::await_suspend(std::coroutine_handle<> h) {
  cont = h;
  if (cpu->HasDeliverablePending()) {
    cpu->DeliverPending(this);
    return;
  }
  Arm();
}

void SimCpu::ExecAwaitable::Arm() {
  // A CPU that was idle while others advanced (e.g. a thread pinned to it
  // being driven from another CPU's coroutine) has a stale local clock;
  // fast-forward so the completion is never scheduled into the past.
  cpu->set_now(std::max(cpu->now(), cpu->engine()->now()));
  started = cpu->now();
  armed_here = true;
  cpu->set_armed(this);
  event = cpu->shard_queue()
              ? cpu->engine()->ScheduleOnCpu(cpu->id(), started + remaining, [this] { Fire(); })
              : cpu->engine()->Schedule(started + remaining, [this] { Fire(); });
}

void SimCpu::ExecAwaitable::Fire() {
  if (!armed_here) {
    return;
  }
  armed_here = false;
  cpu->set_armed(nullptr);
  cpu->set_now(started + remaining);
  remaining = 0;
  cont.resume();
}

void SimCpu::ExecAwaitable::Preempt(Cycles at) {
  cpu->engine()->Cancel(event);
  armed_here = false;
  Cycles t = std::max(at, started);
  Cycles consumed = t - started;
  remaining = std::max<Cycles>(0, remaining - consumed);
  cpu->set_now(t);
}

void SimCpu::ExecAwaitable::Rearm() {
  if (remaining > 0) {
    Arm();
    return;
  }
  cpu->ScheduleResume([this] { cont.resume(); });
}

// ----- FlagAwaitable -----

bool SimCpu::FlagAwaitable::await_ready() noexcept {
  if (flag->is_set()) {
    if (flag->set_time() > cpu->now()) {
      cpu->set_now(flag->set_time());
    }
    return true;
  }
  return false;
}

void SimCpu::FlagAwaitable::await_suspend(std::coroutine_handle<> h) {
  cont = h;
  if (cpu->HasDeliverablePending()) {
    cpu->DeliverPending(this);
    return;
  }
  Arm();
}

void SimCpu::FlagAwaitable::Arm() {
  started = cpu->now();
  armed_here = true;
  alive = std::make_shared<bool>(true);
  cpu->set_armed(this);
  token = flag->AddWaiter([this, guard = alive](Cycles set_time) {
    if (*guard) {
      Fire(set_time);
    }
  });
}

void SimCpu::FlagAwaitable::Fire(Cycles set_time) {
  if (!armed_here) {
    return;  // preempted between Set() and wakeup; spurious resume covers us
  }
  armed_here = false;
  *alive = false;
  cpu->set_armed(nullptr);
  cpu->set_now(std::max(started, set_time));
  cont.resume();
}

void SimCpu::FlagAwaitable::Preempt(Cycles at) {
  armed_here = false;
  if (alive) {
    *alive = false;
  }
  flag->RemoveWaiter(token);  // no-op if Set() already consumed the waiter
  cpu->set_now(std::max(at, started));
}

void SimCpu::FlagAwaitable::Rearm() {
  // Spurious wake after interrupt handling: the caller's loop re-checks the
  // flag and re-waits if needed.
  cpu->ScheduleResume([this] { cont.resume(); });
}

}  // namespace tlbsim
