// Hardware-side observation interface for the tlbcheck analysis subsystem
// (src/check/). A SimCpu holds one nullable sink pointer; every call site is
// guarded by a null check, so a simulation built without checking pays one
// predicted-not-taken branch per event and nothing else (zero-cost-when-off).
//
// Events at this layer are *architectural*: translation consumption, TLB
// fills, interrupt entry/exit and lock transitions. Protocol-level events
// (generation bumps, IPIs, acks) go through the kernel-side sink
// (src/kernel/protocol_check.h).
#ifndef TLBSIM_SRC_HW_CHECK_SINK_H_
#define TLBSIM_SRC_HW_CHECK_SINK_H_

#include <cstdint>

#include "src/hw/tlb.h"

namespace tlbsim {

class SimCpu;

class HwCheckSink {
 public:
  virtual ~HwCheckSink() = default;

  // The MMU consumed a cached translation: a TLB hit whose permissions
  // satisfied the access (the only way a stale entry can do damage). `itlb`
  // distinguishes instruction fetches; `write`/`exec`/`user_intent` mirror
  // the AccessIntent.
  virtual void OnTlbHit(SimCpu& cpu, bool itlb, uint16_t pcid, uint64_t va, const TlbEntry& entry,
                        bool write, bool exec, bool user_intent) = 0;

  // Interrupt entry/exit on `cpu` (IRQs and NMIs; `vector` identifies which).
  virtual void OnIrqEnter(SimCpu& cpu, int vector) = 0;
  virtual void OnIrqExit(SimCpu& cpu, int vector) = 0;

  // Lock transitions (rwsem / future spinlocks). `lock` identifies the
  // instance; `lock_class` is a static-literal class name (lockdep keying).
  virtual void OnLockAcquire(SimCpu& cpu, const void* lock, const char* lock_class,
                             bool exclusive) = 0;
  virtual void OnLockRelease(SimCpu& cpu, const void* lock, const char* lock_class) = 0;
};

}  // namespace tlbsim

#endif  // TLBSIM_SRC_HW_CHECK_SINK_H_
