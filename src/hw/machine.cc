#include "src/hw/machine.h"

#include <algorithm>

#include "src/exec/thread_pool.h"

namespace tlbsim {

Machine::Machine(const MachineConfig& config)
    : config_(config),
      metrics_(config_.topo.num_cpus()),
      coherence_(config_.topo, config_.costs.cache),
      apic_(&engine_, config_.topo, &config_.costs) {
  // --sim-threads N on a multi-socket topology: shard the event heap per
  // socket and hand the engine a window executor. The engine must be
  // configured before anything schedules; nothing has run yet here. More
  // threads than sockets buys nothing (one host thread per shard plus the
  // coordinator), so the pool is clamped.
  //
  // Protocol-shard mode instead *defers* the split: the plan is built here
  // but applied by ActivateProtocolShards() after the workload's serial
  // setup phase, and the window width widens to the IPI wire latency (the
  // banked coherence directory removes every other cross-socket edge). A
  // sharded protocol replay at sim_threads == 1 is legal — windows run
  // inline with no pool — and is the reference timeline the equality
  // harness compares multi-threaded runs against.
  bool want_shards = config_.topo.sockets > 1 &&
                     (config_.sim_threads > 1 || config_.shard_protocol);
  if (want_shards) {
    if (config_.sim_threads > 1) {
      int threads = std::min(config_.sim_threads, config_.topo.sockets);
      sim_pool_ = std::make_unique<ThreadPool>(threads - 1);
      sim_executor_ = std::make_unique<EngineExecutor>(*sim_pool_);
    }
    Engine::ShardPlan plan;
    plan.shards = config_.topo.sockets;
    plan.shard_of_cpu.resize(static_cast<size_t>(config_.topo.num_cpus()));
    for (int i = 0; i < config_.topo.num_cpus(); ++i) {
      plan.shard_of_cpu[static_cast<size_t>(i)] = config_.topo.SocketOf(i);
    }
    plan.executor = sim_executor_.get();
    if (config_.shard_protocol) {
      plan.lookahead = config_.protocol_lookahead > 0
                           ? config_.protocol_lookahead
                           : config_.costs.ProtocolShardLookahead();
      pending_plan_ = std::move(plan);
      protocol_pending_ = true;
    } else if (config_.sim_threads > 1) {
      plan.lookahead = config_.costs.CrossShardLookahead();
      engine_.ConfigureSharding(std::move(plan));
    }
  }
  apic_.set_metrics(&metrics_);
  Rng root(config_.seed);
  std::vector<SimCpu*> raw;
  raw.reserve(static_cast<size_t>(config_.topo.num_cpus()));
  for (int i = 0; i < config_.topo.num_cpus(); ++i) {
    // CPUs learn their memory node only on NUMA machines; -1 keeps every
    // remote-access charge (and NUMA metric) off on the flat default.
    int node = config_.numa.enabled()
                   ? config_.topo.NodeOfCpu(i) % config_.numa.nodes
                   : -1;
    cpus_.push_back(std::make_unique<SimCpu>(i, &engine_, &coherence_, &config_.costs, root.Fork(),
                                             &trace_, &metrics_, node));
    raw.push_back(cpus_.back().get());
  }
  apic_.set_cpus(std::move(raw));
}

Machine::~Machine() = default;

void Machine::ActivateProtocolShards() {
  if (!protocol_pending_ || protocol_active_) {
    return;
  }
  // The engine asserts quiescence (empty heap) itself; the serial setup
  // phase's clock carries over into every shard.
  engine_.ConfigureSharding(std::move(pending_plan_));
  int cps = config_.topo.cpus_per_socket();
  coherence_.ConfigureBanks(config_.topo.sockets, cps);
  apic_.ConfigureBanks(config_.topo.sockets, cps);
  apic_.set_shard_delivery(true);
  for (auto& c : cpus_) {
    c->set_shard_queue(true);
  }
  protocol_active_ = true;
  protocol_pending_ = false;
}

}  // namespace tlbsim
