#include "src/hw/machine.h"

namespace tlbsim {

Machine::Machine(const MachineConfig& config)
    : config_(config),
      metrics_(config_.topo.num_cpus()),
      coherence_(config_.topo, config_.costs.cache),
      apic_(&engine_, config_.topo, &config_.costs) {
  apic_.set_metrics(&metrics_);
  Rng root(config_.seed);
  std::vector<SimCpu*> raw;
  raw.reserve(static_cast<size_t>(config_.topo.num_cpus()));
  for (int i = 0; i < config_.topo.num_cpus(); ++i) {
    // CPUs learn their memory node only on NUMA machines; -1 keeps every
    // remote-access charge (and NUMA metric) off on the flat default.
    int node = config_.numa.enabled()
                   ? config_.topo.NodeOfCpu(i) % config_.numa.nodes
                   : -1;
    cpus_.push_back(std::make_unique<SimCpu>(i, &engine_, &coherence_, &config_.costs, root.Fork(),
                                             &trace_, &metrics_, node));
    raw.push_back(cpus_.back().get());
  }
  apic_.set_cpus(std::move(raw));
}

}  // namespace tlbsim
