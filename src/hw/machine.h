// Machine: aggregates the hardware substrate — engine, coherence model,
// per-CPU SimCpus, and the APIC — configured from one MachineConfig.
#ifndef TLBSIM_SRC_HW_MACHINE_H_
#define TLBSIM_SRC_HW_MACHINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/cache/coherence.h"
#include "src/cache/topology.h"
#include "src/hw/apic.h"
#include "src/hw/cost_model.h"
#include "src/hw/cpu.h"
#include "src/mm/numa.h"
#include "src/sim/engine.h"
#include "src/sim/metrics.h"
#include "src/sim/rng.h"
#include "src/sim/trace.h"

namespace tlbsim {

class ThreadPool;       // src/exec/thread_pool.h; owned here when sim_threads > 1
class EngineExecutor;   // adapter handing the pool to the engine

struct MachineConfig {
  Topology topo;           // default: 2 sockets x 14 cores x 2 SMT
  CostModel costs;
  TlbGeometry tlb_geo;
  // NUMA memory model; default is flat (nodes == 1), which reproduces the
  // pre-NUMA timings exactly. Experiments set numa.nodes = topo.sockets.
  NumaConfig numa;
  uint64_t seed = 1;
  // Host threads for the sharded event engine (the --sim-threads axis).
  // 1 (default) keeps the single-heap engine, bit-identical to every
  // pre-sharding report. >1 splits the engine into per-socket event shards
  // with conservative-lookahead windows; the shootdown protocol itself still
  // runs on the serial timeline (see src/sim/engine.h), so simulation
  // results stay byte-identical at any value — only host-side wall metrics
  // and shard-confined workloads (ScheduleOnCpu traffic) use the extra
  // threads.
  int sim_threads = 1;
};

class Machine {
 public:
  explicit Machine(const MachineConfig& config = MachineConfig{});
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;
  ~Machine();  // out of line: sim_pool_ is incomplete here

  Engine& engine() { return engine_; }
  CoherenceModel& coherence() { return coherence_; }
  Apic& apic() { return apic_; }
  Trace& trace() { return trace_; }
  // The simulation-wide observability registry: live protocol metrics land
  // here as the run executes; CollectMachineMetrics() (src/core/snapshot.h)
  // adds snapshot gauges of every layer's Stats struct.
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  const Topology& topo() const { return config_.topo; }
  const CostModel& costs() const { return config_.costs; }
  const MachineConfig& config() const { return config_; }

  int num_cpus() const { return static_cast<int>(cpus_.size()); }
  SimCpu& cpu(int id) { return *cpus_.at(static_cast<size_t>(id)); }

 private:
  MachineConfig config_;
  // Host threads backing the engine's parallel windows (sim_threads > 1 on a
  // multi-socket topology only); declared before engine_ so the executor
  // outlives every window the engine could still reference.
  std::unique_ptr<ThreadPool> sim_pool_;
  std::unique_ptr<EngineExecutor> sim_executor_;
  Engine engine_;
  Trace trace_;
  MetricsRegistry metrics_;  // before coherence/apic/cpus: they hold handles
  CoherenceModel coherence_;
  Apic apic_;
  std::vector<std::unique_ptr<SimCpu>> cpus_;
};

}  // namespace tlbsim

#endif  // TLBSIM_SRC_HW_MACHINE_H_
