// Machine: aggregates the hardware substrate — engine, coherence model,
// per-CPU SimCpus, and the APIC — configured from one MachineConfig.
#ifndef TLBSIM_SRC_HW_MACHINE_H_
#define TLBSIM_SRC_HW_MACHINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/cache/coherence.h"
#include "src/cache/topology.h"
#include "src/hw/apic.h"
#include "src/hw/cost_model.h"
#include "src/hw/cpu.h"
#include "src/mm/numa.h"
#include "src/sim/engine.h"
#include "src/sim/metrics.h"
#include "src/sim/rng.h"
#include "src/sim/trace.h"

namespace tlbsim {

class ThreadPool;       // src/exec/thread_pool.h; owned here when sim_threads > 1
class EngineExecutor;   // adapter handing the pool to the engine

struct MachineConfig {
  Topology topo;           // default: 2 sockets x 14 cores x 2 SMT
  CostModel costs;
  TlbGeometry tlb_geo;
  // NUMA memory model; default is flat (nodes == 1), which reproduces the
  // pre-NUMA timings exactly. Experiments set numa.nodes = topo.sockets.
  NumaConfig numa;
  uint64_t seed = 1;
  // Host threads for the sharded event engine (the --sim-threads axis).
  // 1 (default) keeps the single-heap engine, bit-identical to every
  // pre-sharding report. >1 splits the engine into per-socket event shards
  // with conservative-lookahead windows; the shootdown protocol itself still
  // runs on the serial timeline (see src/sim/engine.h), so simulation
  // results stay byte-identical at any value — only host-side wall metrics
  // and shard-confined workloads (ScheduleOnCpu traffic) use the extra
  // threads.
  int sim_threads = 1;
  // Protocol sharding: run the shootdown protocol itself — kernel paths,
  // coherence directory, APIC delivery, backend state — on per-socket shards
  // instead of the serial queue. Setup is two-phase: the Machine constructor
  // only *prepares* the shard plan (processes are created and pre-faulted on
  // the unsharded serial engine), then the workload calls
  // System::ActivateProtocolShards() / Machine::ActivateProtocolShards() on
  // the quiescent engine to split the heap and bank every protocol-state
  // object per socket. Meaningful on multi-socket topologies only; works at
  // sim_threads == 1 too (windows run inline on the calling thread), which
  // is how the equality harness replays a sharded run deterministically.
  bool shard_protocol = false;
  // Window width for protocol-shard mode; 0 picks
  // costs.ProtocolShardLookahead() (IPI wire latency — with the coherence
  // directory banked, an IPI is the only cross-socket edge left).
  Cycles protocol_lookahead = 0;
};

class Machine {
 public:
  explicit Machine(const MachineConfig& config = MachineConfig{});
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;
  ~Machine();  // out of line: sim_pool_ is incomplete here

  Engine& engine() { return engine_; }
  CoherenceModel& coherence() { return coherence_; }
  Apic& apic() { return apic_; }
  Trace& trace() { return trace_; }
  // The simulation-wide observability registry: live protocol metrics land
  // here as the run executes; CollectMachineMetrics() (src/core/snapshot.h)
  // adds snapshot gauges of every layer's Stats struct.
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  const Topology& topo() const { return config_.topo; }
  const CostModel& costs() const { return config_.costs; }
  const MachineConfig& config() const { return config_; }

  int num_cpus() const { return static_cast<int>(cpus_.size()); }
  SimCpu& cpu(int id) { return *cpus_.at(static_cast<size_t>(id)); }

  // Protocol sharding, phase 2 (see MachineConfig::shard_protocol): splits
  // the quiescent engine into per-socket shards and banks the machine-owned
  // protocol state (coherence directory, APIC counters + delivery, per-CPU
  // self-schedule routing). Kernel/backend banks are the kernel layer's to
  // configure — System::ActivateProtocolShards() does both. No-op unless the
  // config asked for protocol sharding; idempotent.
  void ActivateProtocolShards();
  bool protocol_shards_active() const { return protocol_active_; }
  // Banks protocol-shard mode will use (== sockets), 1 when not configured.
  int protocol_banks() const {
    return (protocol_pending_ || protocol_active_) ? config_.topo.sockets : 1;
  }

 private:
  MachineConfig config_;
  // Host threads backing the engine's parallel windows (sim_threads > 1 on a
  // multi-socket topology only); declared before engine_ so the executor
  // outlives every window the engine could still reference.
  std::unique_ptr<ThreadPool> sim_pool_;
  std::unique_ptr<EngineExecutor> sim_executor_;
  Engine engine_;
  Trace trace_;
  MetricsRegistry metrics_;  // before coherence/apic/cpus: they hold handles
  CoherenceModel coherence_;
  Apic apic_;
  std::vector<std::unique_ptr<SimCpu>> cpus_;
  // Deferred shard plan for protocol mode (built in the constructor, applied
  // by ActivateProtocolShards once setup is done).
  Engine::ShardPlan pending_plan_;
  bool protocol_pending_ = false;
  bool protocol_active_ = false;
};

}  // namespace tlbsim

#endif  // TLBSIM_SRC_HW_MACHINE_H_
