// Set-associative, PCID-tagged TLB model plus page-walk cache.
//
// Models the x86 semantics the paper depends on:
//   - entries are tagged with a PCID; global (G-bit) entries match any PCID;
//   - INVLPG invalidates one address in the *current* PCID (plus globals) and
//     drops the whole page-walk cache;
//   - INVPCID individual-address invalidates one (pcid, address) pair without
//     touching unrelated page-walk-cache entries (paper §3.4);
//   - a CR3 write without NOFLUSH drops all non-global entries of the loaded
//     PCID;
//   - "page fracturing" (paper §7): when any cached translation came from a
//     guest 2MB page backed by host 4KB pages, a *selective* flush degrades
//     to a full TLB flush.
//
// Epoch-tagged flushes: FlushAll and FlushPcid are O(1), not a scan. Every
// slot's LRU stamp doubles as its birth time (stamps come from one monotone
// clock), and the TLB keeps three flush marks: `mark_all_` (kills every
// entry born at or before it), `mark_nonglobal_` (same, but G-bit entries
// survive) and `pcid_mark_[pcid]` (non-global entries of one PCID). A slot
// is live iff it is valid and its stamp is newer than every mark that
// applies to it; a flush just records the current clock in the right mark.
// Epoch-dead slots are treated exactly like invalid ones everywhere (lookup,
// victim choice, occupancy), so behavior — including victim order and every
// Stats counter — is bit-for-bit what the scanning implementation produced.
//
// The fracture degrade check needs "is any fractured entry resident?"
// without a scan, so the TLB counts live fractured entries: one counter for
// global entries, one per PCID (generation-tagged so FlushAll can zero all
// 4096 of them in O(1)). The resident flag keeps the hardware-ish sticky
// semantics: set on insert, recomputed (now from the counters) only at
// flushes — a fractured entry that merely got evicted still forces the next
// selective flush to degrade until a full flush clears the flag.
//
// Fast-path lookups: workload inner loops hammer the same page, and at 224
// CPUs the two-page-size way scan (up to ways_4k + ways_2m slots per lookup)
// dominates simulated-access wall time. Lookup keeps a one-entry hit cache:
// when the slow path restamps exactly ONE slot, that (pcid, vpn, slot) is
// armed together with the current mutation generation; a repeat lookup of
// the same page under the same PCID then short-circuits to a three-compare
// fast hit. Every mutation — Insert, any flush or drop — bumps the
// generation, disarming the cache, so the fast hit fires only when the full
// scan would provably do the same thing: ++lookups, ++hits, restamp that
// single slot. Stats (bar the new fastpath_hits counter), LRU order and
// victim choice stay bit-for-bit identical to the scanning path.
#ifndef TLBSIM_SRC_HW_TLB_H_
#define TLBSIM_SRC_HW_TLB_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/mm/pte.h"

namespace tlbsim {

struct TlbEntry {
  uint64_t vpn = 0;  // virtual page number in units of the entry's page size
  uint16_t pcid = 0;
  uint64_t pfn = 0;
  uint64_t flags = 0;  // PteFlags bits
  PageSize size = PageSize::k4K;
  bool global = false;
  bool fractured = false;  // guest-2M translation backed by host-4K pieces
};

// Observation hook for the tlbcheck oracle (src/check/): sees every fill so
// the oracle can stamp each cached translation's birth time. Null unless
// checking is enabled.
class TlbObserver {
 public:
  virtual ~TlbObserver() = default;
  virtual void OnTlbInsert(const TlbEntry& e) = 0;
};

// Sizes loosely follow Skylake's combined DTLB+STLB capacity.
struct TlbGeometry {
  int sets_4k = 128;
  int ways_4k = 12;
  int sets_2m = 8;
  int ways_2m = 4;
};

class Tlb {
 public:
  struct Stats {
    uint64_t lookups = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t inserts = 0;
    uint64_t evictions = 0;
    uint64_t cross_pcid_evictions = 0;  // victim belonged to a different PCID
    uint64_t selective_flushes = 0;
    uint64_t full_flushes = 0;
    uint64_t fracture_forced_full = 0;  // selective flushes degraded to full
    uint64_t fastpath_hits = 0;  // hits served by the one-entry hit cache
  };

  explicit Tlb(const TlbGeometry& geo = TlbGeometry{});

  // Looks up `va` under `pcid` (global entries match any pcid).
  std::optional<TlbEntry> Lookup(uint16_t pcid, uint64_t va);

  // Non-counting probe (for invariant checks in tests).
  std::optional<TlbEntry> Probe(uint16_t pcid, uint64_t va) const;

  void Insert(const TlbEntry& e);

  // INVLPG: drop translations of `va` for `current_pcid` and global ones.
  // Degrades to a full flush when fracturing applies. Returns true if the
  // flush was degraded (caller charges full-flush side effects).
  bool InvlPg(uint16_t current_pcid, uint64_t va);

  // INVPCID individual-address mode.
  bool InvPcidAddr(uint16_t pcid, uint64_t va);

  // Hardware-internal drop of one translation (e.g. on a permission-mismatch
  // re-walk). No fracture degrade, not counted as a software flush.
  void DropTranslation(uint16_t pcid, uint64_t va);

  // INVPCID single-context: drop all non-global entries of `pcid`.
  void FlushPcid(uint16_t pcid);

  // CR3 write (no NOFLUSH): drop all non-global entries of `pcid`.
  void FlushOnCr3Write(uint16_t pcid) { FlushPcid(pcid); }

  // Drop everything, optionally keeping G-bit entries (INVPCID all-context
  // keeps nothing; "full flush" via CR3 keeps globals).
  void FlushAll(bool keep_globals);

  // True if any resident entry is marked fractured.
  bool has_fractured() const { return fractured_resident_; }

  // Table-4 paravirtual mitigation switch: when false, selective flushes do
  // not degrade even with fractured entries (models the proposed ISA fix).
  void set_fracture_degrade_enabled(bool on) { fracture_degrade_ = on; }

  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats{}; }

  // Number of valid entries (both page sizes).
  size_t Occupancy() const;

  // Enumerates valid entries (for coherence property checks).
  std::vector<TlbEntry> Entries() const;

  // tlbcheck hook: observer sees every Insert (null when checking off).
  void set_observer(TlbObserver* obs) { observer_ = obs; }

 private:
  // x86 PCIDs are 12-bit.
  static constexpr int kPcidSpace = 4096;

  struct Slot {
    TlbEntry entry;
    uint64_t stamp = 0;  // LRU stamp and birth mark (see header comment)
    bool valid = false;
  };

  std::vector<Slot>& ArrayFor(PageSize s) { return s == PageSize::k4K ? slots_4k_ : slots_2m_; }
  const std::vector<Slot>& ArrayFor(PageSize s) const {
    return s == PageSize::k4K ? slots_4k_ : slots_2m_;
  }
  int SetsFor(PageSize s) const { return s == PageSize::k4K ? geo_.sets_4k : geo_.sets_2m; }
  int WaysFor(PageSize s) const { return s == PageSize::k4K ? geo_.ways_4k : geo_.ways_2m; }

  // Valid and born after every flush mark that applies to it.
  bool IsLive(const Slot& slot) const {
    if (!slot.valid || slot.stamp <= mark_all_) {
      return false;
    }
    if (slot.entry.global) {
      return true;
    }
    return slot.stamp > mark_nonglobal_ && slot.stamp > pcid_mark_[PcidIndex(slot.entry.pcid)];
  }

  static size_t PcidIndex(uint16_t pcid) { return pcid & (kPcidSpace - 1); }

  // Live-fractured-entry accounting (see header comment). FracCount
  // normalizes the slot's generation before handing out the counter.
  uint32_t& FracCount(uint16_t pcid) {
    FracSlot& f = frac_pcid_[PcidIndex(pcid)];
    if (f.gen != frac_gen_) {
      f.gen = frac_gen_;
      f.count = 0;
    }
    return f.count;
  }
  void NoteFracturedInsert(const TlbEntry& e);
  void NoteFracturedDrop(const TlbEntry& e);

  // Drops matching entries of one page size; returns count dropped.
  int DropMatching(PageSize s, uint16_t pcid, uint64_t va, bool match_globals);

  TlbGeometry geo_;
  std::vector<Slot> slots_4k_;
  std::vector<Slot> slots_2m_;
  uint64_t clock_ = 0;

  // Flush marks (all start at 0; the first stamp handed out is 1).
  uint64_t mark_all_ = 0;
  uint64_t mark_nonglobal_ = 0;
  std::vector<uint64_t> pcid_mark_;  // size kPcidSpace

  struct FracSlot {
    uint32_t count = 0;
    uint32_t gen = 0;
  };
  std::vector<FracSlot> frac_pcid_;  // live non-global fractured, per PCID
  uint32_t frac_gen_ = 0;            // bumped by FlushAll: zeroes frac_pcid_
  uint64_t frac_global_ = 0;         // live fractured G-bit entries
  uint64_t fractured_total_ = 0;     // frac_global_ + sum of frac_pcid_

  bool fractured_resident_ = false;  // sticky; recomputed only at flushes
  bool fracture_degrade_ = true;
  TlbObserver* observer_ = nullptr;
  Stats stats_;

  // One-entry fast-path hit cache (see header comment). Armed iff
  // fast_slot_ != nullptr && fast_gen_ == mut_gen_. Slot pointers are stable:
  // the slot arrays never resize after construction.
  Slot* fast_slot_ = nullptr;
  uint64_t fast_vpn_ = 0;
  uint16_t fast_pcid_ = 0;
  int fast_shift_ = 0;      // page-size shift of the armed entry
  uint64_t fast_gen_ = 0;   // mut_gen_ at arm time
  uint64_t mut_gen_ = 1;    // bumped by every insert/flush/drop
};

// Page-walk cache: caches PD-level lookups (one entry covers a 2MB region of
// one PCID). INVLPG drops the whole structure; INVPCID-addr drops only the
// entry covering that address.
//
// FlushAll is the INVLPG-side cost of every unbatched shootdown, so it uses
// the same epoch trick as the TLB: a flush records the clock in `mark_` and
// entries born at or before it are dead (O(1) instead of clearing). The
// targeted flushes stay scans — they already touch at most `capacity_`
// entries — and mark victims dead by zeroing their stamp.
class PageWalkCache {
 public:
  explicit PageWalkCache(int capacity = 32) : capacity_(capacity) {}

  bool Lookup(uint16_t pcid, uint64_t va);
  void Insert(uint16_t pcid, uint64_t va);
  void FlushAll();
  void FlushAddress(uint16_t pcid, uint64_t va);
  void FlushPcid(uint16_t pcid);

  struct Stats {
    uint64_t lookups = 0;
    uint64_t hits = 0;
    uint64_t full_flushes = 0;
  };
  const Stats& stats() const { return stats_; }

  // Number of live entries (dead ones linger in the vector until reused).
  size_t size() const;

 private:
  struct Entry {
    uint16_t pcid;
    uint64_t region;  // va >> 21
    uint64_t stamp;   // birth mark; 0 or <= mark_ means dead
  };
  bool Live(const Entry& e) const { return e.stamp > mark_; }

  int capacity_;
  uint64_t clock_ = 0;
  uint64_t mark_ = 0;
  std::vector<Entry> entries_;
  Stats stats_;
};

}  // namespace tlbsim

#endif  // TLBSIM_SRC_HW_TLB_H_
