#include "src/hw/tlb.h"

#include <algorithm>

namespace tlbsim {

Tlb::Tlb(const TlbGeometry& geo) : geo_(geo) {
  slots_4k_.resize(static_cast<size_t>(geo_.sets_4k) * geo_.ways_4k);
  slots_2m_.resize(static_cast<size_t>(geo_.sets_2m) * geo_.ways_2m);
  pcid_mark_.resize(kPcidSpace, 0);
  frac_pcid_.resize(kPcidSpace);
}

namespace {
uint64_t VpnOf(uint64_t va, PageSize s) { return va >> ShiftOf(s); }
}  // namespace

std::optional<TlbEntry> Tlb::Lookup(uint16_t pcid, uint64_t va) {
  // Fast path: same page, same PCID, nothing mutated since the arm. The full
  // scan would restamp exactly the armed slot (uniqueness was established at
  // arm time and no mutation can have added or killed a match since), so
  // short-circuit to it. Restamps keep the cache armed: they only raise
  // stamps, never move flush marks or change which slots match.
  if (fast_slot_ != nullptr && fast_gen_ == mut_gen_ && pcid == fast_pcid_ &&
      (va >> fast_shift_) == fast_vpn_) {
    ++stats_.lookups;
    ++stats_.hits;
    ++stats_.fastpath_hits;
    fast_slot_->stamp = ++clock_;
    return fast_slot_->entry;
  }
  ++stats_.lookups;
  auto r = Probe(pcid, va);
  if (r.has_value()) {
    ++stats_.hits;
    // Refresh LRU stamp. A live entry's new stamp is newer than every flush
    // mark by construction, so refreshing never resurrects anything.
    Slot* match = nullptr;
    int matches = 0;
    int match_shift = 0;
    for (PageSize s : {PageSize::k4K, PageSize::k2M}) {
      uint64_t vpn = VpnOf(va, s);
      int set = static_cast<int>(vpn % static_cast<uint64_t>(SetsFor(s)));
      auto& arr = ArrayFor(s);
      for (int w = 0; w < WaysFor(s); ++w) {
        Slot& slot = arr[static_cast<size_t>(set) * WaysFor(s) + w];
        if (IsLive(slot) && slot.entry.vpn == vpn && slot.entry.size == s &&
            (slot.entry.global || slot.entry.pcid == pcid)) {
          slot.stamp = ++clock_;
          match = &slot;
          ++matches;
          match_shift = ShiftOf(s);
        }
      }
    }
    // Arm only on a unique match: with two matches (e.g. a global and a
    // non-global entry, or a 4K entry under a 2M one) the scan restamps
    // both, which the one-slot fast hit cannot reproduce.
    if (matches == 1) {
      fast_slot_ = match;
      fast_vpn_ = va >> match_shift;
      fast_pcid_ = pcid;
      fast_shift_ = match_shift;
      fast_gen_ = mut_gen_;
    } else {
      fast_slot_ = nullptr;
    }
  } else {
    ++stats_.misses;
    fast_slot_ = nullptr;
  }
  return r;
}

std::optional<TlbEntry> Tlb::Probe(uint16_t pcid, uint64_t va) const {
  for (PageSize s : {PageSize::k4K, PageSize::k2M}) {
    uint64_t vpn = VpnOf(va, s);
    int set = static_cast<int>(vpn % static_cast<uint64_t>(SetsFor(s)));
    const auto& arr = ArrayFor(s);
    for (int w = 0; w < WaysFor(s); ++w) {
      const Slot& slot = arr[static_cast<size_t>(set) * WaysFor(s) + w];
      if (IsLive(slot) && slot.entry.vpn == vpn && slot.entry.size == s &&
          (slot.entry.global || slot.entry.pcid == pcid)) {
        return slot.entry;
      }
    }
  }
  return std::nullopt;
}

void Tlb::Insert(const TlbEntry& e) {
  ++mut_gen_;  // disarm the fast path: this may evict or shadow the armed entry
  if (observer_ != nullptr) {
    observer_->OnTlbInsert(e);
  }
  ++stats_.inserts;
  auto& arr = ArrayFor(e.size);
  int ways = WaysFor(e.size);
  int set = static_cast<int>(e.vpn % static_cast<uint64_t>(SetsFor(e.size)));
  // Victim preference: a stale duplicate, else the first dead slot in way
  // order, else LRU among live slots. Epoch-dead slots count as dead here,
  // which keeps victim choice identical to the eager-invalidate scheme.
  Slot* victim = nullptr;
  bool victim_live = false;
  for (int w = 0; w < ways; ++w) {
    Slot& slot = arr[static_cast<size_t>(set) * ways + w];
    bool live = IsLive(slot);
    if (live && slot.entry.vpn == e.vpn && slot.entry.pcid == e.pcid &&
        slot.entry.size == e.size) {
      victim = &slot;  // overwrite stale duplicate
      victim_live = true;
      break;
    }
    if (!live) {
      if (victim == nullptr || victim_live) {
        victim = &slot;
        victim_live = false;
      }
    } else if (victim == nullptr || (victim_live && slot.stamp < victim->stamp)) {
      victim = &slot;
      victim_live = true;
    }
  }
  if (victim_live) {
    ++stats_.evictions;
    if (victim->entry.pcid != e.pcid) {
      ++stats_.cross_pcid_evictions;  // PCID-sharing pressure (paper §3.3)
    }
    if (victim->entry.fractured) {
      NoteFracturedDrop(victim->entry);
    }
  }
  victim->valid = true;
  victim->entry = e;
  victim->stamp = ++clock_;
  if (e.fractured) {
    NoteFracturedInsert(e);
  }
}

int Tlb::DropMatching(PageSize s, uint16_t pcid, uint64_t va, bool match_globals) {
  uint64_t vpn = VpnOf(va, s);
  int set = static_cast<int>(vpn % static_cast<uint64_t>(SetsFor(s)));
  auto& arr = ArrayFor(s);
  int ways = WaysFor(s);
  int dropped = 0;
  for (int w = 0; w < ways; ++w) {
    Slot& slot = arr[static_cast<size_t>(set) * ways + w];
    if (!IsLive(slot) || slot.entry.vpn != vpn || slot.entry.size != s) {
      continue;
    }
    bool pcid_match = slot.entry.pcid == pcid;
    bool global_match = match_globals && slot.entry.global;
    if (pcid_match || global_match) {
      if (slot.entry.fractured) {
        NoteFracturedDrop(slot.entry);
      }
      slot.valid = false;
      ++dropped;
    }
  }
  return dropped;
}

bool Tlb::InvlPg(uint16_t current_pcid, uint64_t va) {
  ++mut_gen_;
  ++stats_.selective_flushes;
  if (fractured_resident_ && fracture_degrade_) {
    ++stats_.fracture_forced_full;
    FlushAll(/*keep_globals=*/false);
    return true;
  }
  DropMatching(PageSize::k4K, current_pcid, va, /*match_globals=*/true);
  DropMatching(PageSize::k2M, current_pcid, va, /*match_globals=*/true);
  return false;
}

bool Tlb::InvPcidAddr(uint16_t pcid, uint64_t va) {
  ++mut_gen_;
  ++stats_.selective_flushes;
  if (fractured_resident_ && fracture_degrade_) {
    ++stats_.fracture_forced_full;
    FlushAll(/*keep_globals=*/false);
    return true;
  }
  DropMatching(PageSize::k4K, pcid, va, /*match_globals=*/false);
  DropMatching(PageSize::k2M, pcid, va, /*match_globals=*/false);
  return false;
}

void Tlb::DropTranslation(uint16_t pcid, uint64_t va) {
  ++mut_gen_;
  DropMatching(PageSize::k4K, pcid, va, /*match_globals=*/true);
  DropMatching(PageSize::k2M, pcid, va, /*match_globals=*/true);
}

void Tlb::FlushPcid(uint16_t pcid) {
  ++mut_gen_;
  ++stats_.full_flushes;
  uint32_t& frac = FracCount(pcid);
  fractured_total_ -= frac;
  frac = 0;
  pcid_mark_[PcidIndex(pcid)] = clock_;
  fractured_resident_ = fractured_total_ > 0;
}

void Tlb::FlushAll(bool keep_globals) {
  ++mut_gen_;
  ++stats_.full_flushes;
  if (keep_globals) {
    mark_nonglobal_ = clock_;
    fractured_total_ = frac_global_;
  } else {
    mark_all_ = clock_;
    fractured_total_ = 0;
    frac_global_ = 0;
  }
  ++frac_gen_;  // every per-PCID fractured count drops to zero, O(1)
  fractured_resident_ = fractured_total_ > 0;
}

void Tlb::NoteFracturedInsert(const TlbEntry& e) {
  if (e.global) {
    ++frac_global_;
  } else {
    ++FracCount(e.pcid);
  }
  ++fractured_total_;
  fractured_resident_ = true;
}

void Tlb::NoteFracturedDrop(const TlbEntry& e) {
  // Deliberately leaves fractured_resident_ alone: the flag is sticky until
  // the next flush, matching hardware-conservative degrade behavior.
  if (e.global) {
    --frac_global_;
  } else {
    --FracCount(e.pcid);
  }
  --fractured_total_;
}

size_t Tlb::Occupancy() const {
  size_t n = 0;
  for (const auto* arr : {&slots_4k_, &slots_2m_}) {
    for (const Slot& slot : *arr) {
      if (IsLive(slot)) {
        ++n;
      }
    }
  }
  return n;
}

std::vector<TlbEntry> Tlb::Entries() const {
  std::vector<TlbEntry> out;
  for (const auto* arr : {&slots_4k_, &slots_2m_}) {
    for (const Slot& slot : *arr) {
      if (IsLive(slot)) {
        out.push_back(slot.entry);
      }
    }
  }
  return out;
}

bool PageWalkCache::Lookup(uint16_t pcid, uint64_t va) {
  ++stats_.lookups;
  uint64_t region = va >> kHugeShift;
  for (Entry& e : entries_) {
    if (Live(e) && e.pcid == pcid && e.region == region) {
      e.stamp = ++clock_;
      ++stats_.hits;
      return true;
    }
  }
  return false;
}

void PageWalkCache::Insert(uint16_t pcid, uint64_t va) {
  uint64_t region = va >> kHugeShift;
  Entry* dead = nullptr;
  for (Entry& e : entries_) {
    if (Live(e) && e.pcid == pcid && e.region == region) {
      e.stamp = ++clock_;
      return;
    }
    if (!Live(e) && dead == nullptr) {
      dead = &e;
    }
  }
  if (dead != nullptr) {
    *dead = Entry{pcid, region, ++clock_};
    return;
  }
  if (entries_.size() < static_cast<size_t>(capacity_)) {
    entries_.push_back(Entry{pcid, region, ++clock_});
    return;
  }
  auto victim = std::min_element(entries_.begin(), entries_.end(),
                                 [](const Entry& a, const Entry& b) { return a.stamp < b.stamp; });
  *victim = Entry{pcid, region, ++clock_};
}

void PageWalkCache::FlushAll() {
  ++stats_.full_flushes;
  mark_ = clock_;  // O(1): everything born so far is dead
}

void PageWalkCache::FlushAddress(uint16_t pcid, uint64_t va) {
  uint64_t region = va >> kHugeShift;
  for (Entry& e : entries_) {
    if (Live(e) && e.pcid == pcid && e.region == region) {
      e.stamp = 0;
    }
  }
}

void PageWalkCache::FlushPcid(uint16_t pcid) {
  for (Entry& e : entries_) {
    if (Live(e) && e.pcid == pcid) {
      e.stamp = 0;
    }
  }
}

size_t PageWalkCache::size() const {
  size_t n = 0;
  for (const Entry& e : entries_) {
    if (Live(e)) {
      ++n;
    }
  }
  return n;
}

}  // namespace tlbsim
