// MMU front-end: translation through the TLB with hardware page walks.
//
// Models the behaviours the paper's CoW optimization (§4.1) depends on:
//   - a page fault does NOT reliably invalidate the faulting TLB entry (the
//     stale entry may stay cached);
//   - on a permission mismatch (e.g. a write through a cached read-only
//     entry) the CPU drops the stale entry and re-walks the page tables
//     before deciding to fault — so an explicit write access after a PTE
//     upgrade removes the stale entry and caches the fresh one without any
//     INVLPG;
//   - a write through a cached entry with D=0 triggers the A/D microcode
//     assist: re-walk, re-check write permission against the live PTE, set
//     A/D atomically in memory. (A cached-flags write-back would let a stale
//     TLB entry clobber a concurrent write-protect.)
// Walk costs are charged inline on the CPU's local clock.
#ifndef TLBSIM_SRC_HW_MMU_H_
#define TLBSIM_SRC_HW_MMU_H_

#include <cstdint>

#include "src/hw/cpu.h"
#include "src/mm/page_table.h"

namespace tlbsim {

struct AccessIntent {
  bool write = false;
  bool exec = false;
  bool user = true;  // false: kernel-initiated access to a user address
};

enum class FaultKind {
  kNone,
  kNotPresent,
  kProtWrite,  // write to a non-writable page
  kProtUser,   // user access to a supervisor page
  kProtExec,   // instruction fetch from NX page
};

struct XlateResult {
  bool ok = false;
  FaultKind fault = FaultKind::kNone;
  Pte pte;                    // leaf entry used (valid when ok)
  PageSize size = PageSize::k4K;
  uint64_t pa = 0;
  bool tlb_hit = false;
};

class Mmu {
 public:
  // Translates `va` on `cpu`'s active address space, filling the TLB on a
  // successful walk. Charges walk cycles inline. Does not deliver the fault;
  // callers (the kernel's fault path / user memory accessors) do that.
  static XlateResult Translate(SimCpu& cpu, uint64_t va, AccessIntent intent);

 private:
  static bool PermsOk(uint64_t flags, const AccessIntent& intent, FaultKind* fault);
};

}  // namespace tlbsim

#endif  // TLBSIM_SRC_HW_MMU_H_
