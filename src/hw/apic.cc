#include "src/hw/apic.h"

#include <algorithm>
#include <map>

namespace tlbsim {

Cycles Apic::WireLatency(int from, int to) const {
  switch (topo_.Between(from, to)) {
    case Topology::Distance::kSelf:
    case Topology::Distance::kSmtSibling:
      return costs_->ipi_wire_smt;
    case Topology::Distance::kSameSocket:
      return costs_->ipi_wire_same_socket;
    case Topology::Distance::kCrossSocket:
      return costs_->ipi_wire_cross_socket;
  }
  return costs_->ipi_wire_cross_socket;
}

// tlblint: setup — single-threaded Machine construction
void Apic::ConfigureBanks(int banks, int cpus_per_bank) {
  if (banks < 1) banks = 1;
  if (cpus_per_bank < 1) cpus_per_bank = 1;
  banks_.assign(static_cast<size_t>(banks), Stats{});
  cpus_per_bank_ = cpus_per_bank;
  wire_hists_.clear();
  if (banks > 1 && metrics_ != nullptr) {
    wire_hists_.reserve(static_cast<size_t>(banks));
    for (int b = 0; b < banks; ++b) {
      wire_hists_.push_back(
          &metrics_->histogram("apic.ipi_wire_cycles.socket" + std::to_string(b)));
    }
  }
}

// tlblint: setup — aggregation between runs, engine quiescent
Apic::Stats Apic::stats() const {
  Stats sum;
  for (const Stats& b : banks_) {
    sum.ipis_sent += b.ipis_sent;
    sum.icr_writes += b.icr_writes;
    sum.multicast_messages += b.multicast_messages;
  }
  return sum;
}

void Apic::Deliver(SimCpu& sender, int target, int vector) {
  Cycles wire = sender.rng().Jitter(WireLatency(sender.id(), target), costs_->jitter_frac);
  Cycles arrival = sender.now() + wire;
  SimCpu* cpu = cpus_.at(static_cast<size_t>(target));
  if (shard_delivery_) {
    engine_->ScheduleOnCpu(target, arrival, [cpu, vector] { cpu->RaiseIrq(vector); });
  } else {
    engine_->Schedule(arrival, [cpu, vector] { cpu->RaiseIrq(vector); });
  }
  ++BankFor(sender.id()).ipis_sent;
  Histogram* h = WireHistFor(sender.id());
  if (h != nullptr) {
    h->Record(static_cast<double>(wire));
  }
}

void Apic::SendIpi(SimCpu& sender, const std::vector<int>& targets, int vector) {
  if (targets.empty()) {
    return;
  }
  Stats& bank = BankFor(sender.id());
  if (!use_multicast_) {
    for (int t : targets) {
      sender.AdvanceInline(sender.rng().Jitter(costs_->ipi_icr_write, costs_->jitter_frac));
      ++bank.icr_writes;
      Deliver(sender, t, vector);
    }
    return;
  }
  // Cluster-mode multicast: one ICR write per addressed cluster.
  std::map<int, std::vector<int>> by_cluster;
  for (int t : targets) {
    by_cluster[t / kClusterSize].push_back(t);
  }
  for (auto& [cluster, members] : by_cluster) {
    sender.AdvanceInline(sender.rng().Jitter(costs_->ipi_icr_write, costs_->jitter_frac));
    ++bank.icr_writes;
    ++bank.multicast_messages;
    for (int t : members) {
      Deliver(sender, t, vector);
    }
  }
}

void Apic::SendNmi(SimCpu& sender, int target) {
  sender.AdvanceInline(sender.rng().Jitter(costs_->ipi_icr_write, costs_->jitter_frac));
  ++BankFor(sender.id()).icr_writes;
  Deliver(sender, target, kNmiVector);
}

}  // namespace tlbsim
