#include "src/hw/apic.h"

#include <algorithm>
#include <map>

namespace tlbsim {

Cycles Apic::WireLatency(int from, int to) const {
  switch (topo_.Between(from, to)) {
    case Topology::Distance::kSelf:
    case Topology::Distance::kSmtSibling:
      return costs_->ipi_wire_smt;
    case Topology::Distance::kSameSocket:
      return costs_->ipi_wire_same_socket;
    case Topology::Distance::kCrossSocket:
      return costs_->ipi_wire_cross_socket;
  }
  return costs_->ipi_wire_cross_socket;
}

void Apic::Deliver(SimCpu& sender, int target, int vector) {
  Cycles wire = sender.rng().Jitter(WireLatency(sender.id(), target), costs_->jitter_frac);
  Cycles arrival = sender.now() + wire;
  SimCpu* cpu = cpus_.at(static_cast<size_t>(target));
  engine_->Schedule(arrival, [cpu, vector] { cpu->RaiseIrq(vector); });
  ++stats_.ipis_sent;
  if (wire_hist_ != nullptr) {
    wire_hist_->Record(static_cast<double>(wire));
  }
}

void Apic::SendIpi(SimCpu& sender, const std::vector<int>& targets, int vector) {
  if (targets.empty()) {
    return;
  }
  if (!use_multicast_) {
    for (int t : targets) {
      sender.AdvanceInline(sender.rng().Jitter(costs_->ipi_icr_write, costs_->jitter_frac));
      ++stats_.icr_writes;
      Deliver(sender, t, vector);
    }
    return;
  }
  // Cluster-mode multicast: one ICR write per addressed cluster.
  std::map<int, std::vector<int>> by_cluster;
  for (int t : targets) {
    by_cluster[t / kClusterSize].push_back(t);
  }
  for (auto& [cluster, members] : by_cluster) {
    sender.AdvanceInline(sender.rng().Jitter(costs_->ipi_icr_write, costs_->jitter_frac));
    ++stats_.icr_writes;
    ++stats_.multicast_messages;
    for (int t : members) {
      Deliver(sender, t, vector);
    }
  }
}

void Apic::SendNmi(SimCpu& sender, int target) {
  sender.AdvanceInline(sender.rng().Jitter(costs_->ipi_icr_write, costs_->jitter_frac));
  ++stats_.icr_writes;
  Deliver(sender, target, kNmiVector);
}

}  // namespace tlbsim
