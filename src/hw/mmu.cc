#include "src/hw/mmu.h"

#include "src/hw/check_sink.h"

namespace tlbsim {

bool Mmu::PermsOk(uint64_t flags, const AccessIntent& intent, FaultKind* fault) {
  Pte p(flags);
  if (intent.user && !p.user()) {
    *fault = FaultKind::kProtUser;
    return false;
  }
  if (intent.write && !p.writable()) {
    *fault = FaultKind::kProtWrite;
    return false;
  }
  if (intent.exec && !p.executable()) {
    *fault = FaultKind::kProtExec;
    return false;
  }
  return true;
}

XlateResult Mmu::Translate(SimCpu& cpu, uint64_t va, AccessIntent intent) {
  XlateResult r;
  PageTable* pt = cpu.active_pt();
  if (pt == nullptr) {
    r.fault = FaultKind::kNotPresent;
    return r;
  }
  const CostModel& costs = cpu.costs();
  uint16_t pcid = cpu.active_pcid();
  // Instruction fetches translate through the ITLB; everything else through
  // the DTLB.
  Tlb& tlb = intent.exec ? cpu.itlb() : cpu.tlb();

  auto hit = tlb.Lookup(pcid, va);
  if (hit.has_value()) {
    FaultKind fault = FaultKind::kNone;
    bool needs_ad_assist = intent.write && !Pte(hit->flags).dirty();
    if (PermsOk(hit->flags, intent, &fault) && !needs_ad_assist) {
      if (HwCheckSink* sink = cpu.check_sink()) {
        // The entry is being consumed: the only moment staleness matters.
        sink->OnTlbHit(cpu, intent.exec, pcid, va, *hit, intent.write, intent.exec, intent.user);
      }
      r.ok = true;
      r.tlb_hit = true;
      r.pte = Pte::Make(hit->pfn, hit->flags);
      r.size = hit->size;
      uint64_t offset = va & (BytesOf(hit->size) - 1);
      r.pa = (hit->pfn << kPageShift) + offset;
      return r;
    }
    // Permission mismatch or D-bit assist: the CPU drops the stale entry and
    // re-walks before raising a fault or setting A/D (this is what makes CoW
    // flush avoidance sound, §4.1).
    tlb.DropTranslation(pcid, va);
  }

  // Hardware page walk. On a NUMA machine the walker reads its node-local
  // replica when one exists (Mitosis, pt_replication); each level whose
  // paging-structure page is homed remotely pays the node-distance surcharge.
  // A PWC hit skips the upper levels, so only a remote leaf level costs extra.
  bool pwc_hit = cpu.pwc().Lookup(pcid, va);
  Cycles walk_cost =
      pwc_hit ? costs.walk_pwc_hit : static_cast<Cycles>(costs.walk_levels) * costs.walk_step;

  PageTable::WalkResult walk = pt->Walk(va, cpu.numa_node());
  int remote_levels = pwc_hit ? (walk.leaf_remote ? 1 : 0) : walk.remote_levels;
  Cycles remote_extra = static_cast<Cycles>(remote_levels) * costs.walk_step_remote_extra;
  walk_cost += remote_extra;
  cpu.AdvanceInline(walk_cost);
  cpu.NotePageWalk(walk_cost);
  if (remote_extra > 0) {
    cpu.NoteRemoteWalk(remote_extra);
  }
  if (!walk.present) {
    r.fault = FaultKind::kNotPresent;
    return r;
  }
  FaultKind fault = FaultKind::kNone;
  if (!PermsOk(walk.pte.raw(), intent, &fault)) {
    r.fault = fault;
    return r;
  }

  // Hardware sets Accessed (and Dirty, for writes) atomically in the live
  // PTE during the walk.
  uint64_t ad = PteFlags::kAccessed | (intent.write ? PteFlags::kDirty : 0);
  if ((walk.pte.raw() & ad) != ad) {
    Pte updated = walk.pte.WithFlags(ad);
    pt->SetPte(PageAlignDown(va, walk.size), updated);
    cpu.AdvanceInline(cpu.costs().pte_update);
    walk.pte = updated;
  }

  TlbEntry e;
  e.vpn = va >> ShiftOf(walk.size);
  e.pcid = pcid;
  e.pfn = walk.pte.pfn();
  e.flags = walk.pte.raw();
  e.size = walk.size;
  e.global = walk.pte.global();
  e.fractured = false;
  tlb.Insert(e);
  cpu.pwc().Insert(pcid, va);

  r.ok = true;
  r.tlb_hit = false;
  r.pte = walk.pte;
  r.size = walk.size;
  uint64_t offset = va & (BytesOf(walk.size) - 1);
  r.pa = (walk.pte.pfn() << kPageShift) + offset;
  return r;
}

}  // namespace tlbsim
