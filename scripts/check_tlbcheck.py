#!/usr/bin/env python3
"""CI gate for tlbcheck-instrumented bench runs.

Each BENCH_*.json produced under `--check` carries a "tlbcheck" section:

  "tlbcheck": {"violations": N, "suppressed": M, "reports": [...]}

This script asserts that the section is present (i.e. the run really was
checked — a silently unchecked run passing is the failure mode we care most
about) and that every paper configuration ran violation-free. On failure it
prints the classified reports so the CI log shows WHAT the oracle saw
(kind, cpu, va, generations, happens-before evidence), not just a count.

Usage: check_tlbcheck.py <BENCH_*.json> [more...]
Only standard-library Python.
"""

import json
import sys


def fail(path, msg):
    print(f"FAIL {path}: {msg}")
    return 1


def check(path):
    with open(path) as f:
        doc = json.load(f)
    tc = doc.get("tlbcheck")
    if tc is None:
        return fail(path, 'no "tlbcheck" section — was this bench run with --check?')
    rc = 0
    violations = tc.get("violations")
    if not isinstance(violations, int):
        rc |= fail(path, f'tlbcheck.violations is {violations!r}, expected an integer')
    elif violations != 0:
        rc |= fail(path, f"tlbcheck found {violations} violation(s)")
        for rep in tc.get("reports", []):
            print(f"       {json.dumps(rep, sort_keys=True)}")
    if doc.get("status") != "pass":
        rc |= fail(path, f'status is {doc.get("status")!r}, expected "pass"')
    if rc == 0:
        print(f'OK   {path}: tlbcheck clean (violations=0, suppressed={tc.get("suppressed", 0)})')
    return rc


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    rc = 0
    for path in argv[1:]:
        try:
            rc |= check(path)
        except (OSError, json.JSONDecodeError) as e:
            rc |= fail(path, str(e))
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv))
