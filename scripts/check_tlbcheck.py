#!/usr/bin/env python3
"""CI gate for tlbcheck-instrumented bench runs.

Each BENCH_*.json produced under `--check` carries a "tlbcheck" section:

  "tlbcheck": {"violations": N, "suppressed": M, "reports": [...]}

This script asserts that the section is present (i.e. the run really was
checked — a silently unchecked run passing is the failure mode we care most
about) and that every paper configuration ran violation-free. On failure it
prints the classified reports so the CI log shows WHAT the oracle saw
(kind, cpu, va, generations, happens-before evidence), not just a count.

With `--backend ipi|queue` it additionally asserts each report really ran
on that flush backend alone — the backend-matrix CI job uses this so a
sweep that silently fell back to the default axis cannot pass. An ipi-only
run is recognized by the *absence* of backend markers (that is the
byte-compatibility contract with pre-axis reports); a queue-only run must
say so in config.backends and carry a "metrics_queue" snapshot.

Usage: check_tlbcheck.py [--backend ipi|queue] <BENCH_*.json> [more...]
Only standard-library Python.
"""

import json
import sys


def fail(path, msg):
    print(f"FAIL {path}: {msg}")
    return 1


def check_backend(path, doc, backend):
    """Assert the report was produced by a single-backend run of `backend`."""
    rc = 0
    backends = doc.get("config", {}).get("backends")
    if backend == "ipi":
        # The ipi-only axis emits no backend markers at all.
        if backends is not None:
            rc |= fail(path, f"expected an ipi-only report, config.backends is {backends!r}")
        if "metrics_queue" in doc:
            rc |= fail(path, 'expected an ipi-only report, found a "metrics_queue" section')
    elif backend == "queue":
        if backends != ["queue"]:
            rc |= fail(path, f'expected config.backends == ["queue"], got {backends!r}')
        if "metrics" in doc:
            rc |= fail(path, 'expected a queue-only report, found an ipi "metrics" section')
    return rc


def check(path, backend=None):
    with open(path) as f:
        doc = json.load(f)
    tc = doc.get("tlbcheck")
    if tc is None:
        return fail(path, 'no "tlbcheck" section — was this bench run with --check?')
    rc = 0
    violations = tc.get("violations")
    if not isinstance(violations, int):
        rc |= fail(path, f'tlbcheck.violations is {violations!r}, expected an integer')
    elif violations != 0:
        rc |= fail(path, f"tlbcheck found {violations} violation(s)")
        for rep in tc.get("reports", []):
            print(f"       {json.dumps(rep, sort_keys=True)}")
    if doc.get("status") != "pass":
        rc |= fail(path, f'status is {doc.get("status")!r}, expected "pass"')
    if backend is not None:
        rc |= check_backend(path, doc, backend)
    if rc == 0:
        tag = f", backend={backend}" if backend else ""
        print(f'OK   {path}: tlbcheck clean (violations=0, '
              f'suppressed={tc.get("suppressed", 0)}{tag})')
    return rc


def main(argv):
    args = argv[1:]
    backend = None
    if args and args[0] == "--backend":
        if len(args) < 2 or args[1] not in ("ipi", "queue"):
            print(__doc__)
            return 2
        backend = args[1]
        args = args[2:]
    if not args:
        print(__doc__)
        return 2
    rc = 0
    for path in args:
        try:
            rc |= check(path, backend)
        except (OSError, json.JSONDecodeError) as e:
            rc |= fail(path, str(e))
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv))
