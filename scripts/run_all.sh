#!/bin/sh
# Build, test, and regenerate every paper table/figure. JSON snapshots of
# each bench (BENCH_<name>.json) are collected under results/.
#
# Usage: run_all.sh [--quick]
#   --quick  reduced seed/run counts in the sweep benches — faster local
#            iteration, same table shapes.
set -e
cd "$(dirname "$0")/.."
quick=""
for arg in "$@"; do
  case "$arg" in
    --quick) quick="--quick" ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done
# Pick Ninja only when configuring fresh: an already-configured build dir
# keeps its generator (re-running with -G on it is a CMake error).
if [ ! -f build/CMakeCache.txt ] && command -v ninja >/dev/null 2>&1; then
  cmake -B build -S . -G Ninja
else
  cmake -B build -S .
fi
nproc_val="$(nproc 2>/dev/null || echo 4)"
cmake --build build -j "$nproc_val"
ctest --test-dir build --output-on-failure
mkdir -p results
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  case "$(basename "$b")" in
    prim_ops) bench_args="" ;;  # google-benchmark harness owns its CLI
    # Sweep-shaped benches fan out across host threads (BenchReport ignores
    # flags a bench doesn't use, so passing them generically is safe).
    *) bench_args="--json results/ --threads $nproc_val $quick" ;;
  esac
  echo "===== $b ====="
  # shellcheck disable=SC2086
  "$b" $bench_args
done
# 224-cpu preset smoke: the 8-socket sharded-protocol storm must replay the
# serial engine bit-exactly at 8 shard threads (exits nonzero otherwise).
echo "===== build/examples/big_machine ====="
./build/examples/big_machine --sim-threads 8
# Wall-clock tripwire: warn (never fail locally) when sim_throughput's
# events/s or ns/shootdown drifted >10% from the committed baseline.
python3 scripts/perf_compare.py results/BENCH_sim_throughput.json
