#!/bin/sh
# Build, test, and regenerate every paper table/figure. JSON snapshots of
# each bench (BENCH_<name>.json) are collected under results/.
set -e
cd "$(dirname "$0")/.."
# Pick Ninja only when configuring fresh: an already-configured build dir
# keeps its generator (re-running with -G on it is a CMake error).
if [ ! -f build/CMakeCache.txt ] && command -v ninja >/dev/null 2>&1; then
  cmake -B build -S . -G Ninja
else
  cmake -B build -S .
fi
cmake --build build -j "$(nproc 2>/dev/null || echo 4)"
ctest --test-dir build --output-on-failure
mkdir -p results
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  case "$(basename "$b")" in
    prim_ops) json_args="" ;;  # google-benchmark harness owns its CLI
    *) json_args="--json results/" ;;
  esac
  echo "===== $b ====="
  # shellcheck disable=SC2086
  "$b" $json_args
done
