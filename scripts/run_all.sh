#!/bin/sh
# Build, test, and regenerate every paper table/figure.
set -e
cd "$(dirname "$0")/.."
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "===== $b ====="
  "$b"
done
