#!/usr/bin/env python3
"""Strip the host-dependent sections from a BENCH_*.json report.

Every bench report is deterministic — same binary, same flags, same bytes —
except for two top-level carve-outs:

  "host"  sweep-executor wall time / realized parallel speedup
          (bench/report.h SetHost, src/exec/sweep.h HostJson)
  "wall"  sim_throughput's host wall-clock measurements

CI's determinism gates run a bench twice (or at --threads 1 vs --threads N),
strip both files with this script, and `cmp` the results. Canonical output
(sorted keys, fixed separators) so byte comparison is meaningful.

Usage: strip_nondeterministic.py <in.json> <out.json>
Only standard-library Python.
"""

import json
import sys


def main(argv):
    if len(argv) != 3:
        print(__doc__)
        return 2
    with open(argv[1]) as f:
        doc = json.load(f)
    doc.pop("host", None)
    doc.pop("wall", None)
    with open(argv[2], "w") as f:
        json.dump(doc, f, sort_keys=True, separators=(",", ":"))
        f.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
