#!/usr/bin/env python3
"""CI gate for BENCH_*.json snapshots.

Checks that each report is structurally sound (schema_version, status)
and that the counters the paper predicts to be nonzero under a shootdown
workload actually are. A zero "apic.ipis_sent" in fig5, for example,
means the simulated protocol silently stopped sending shootdown IPIs —
exactly the kind of regression latency numbers alone don't catch.

Usage: check_bench_json.py <BENCH_*.json> [more...]
Only standard-library Python.
"""

import json
import sys

# Counters that must be strictly positive per bench (dotted registry names
# under "metrics" -> "counters"). Benches not listed get structure checks only.
REQUIRED_NONZERO = {
    "fig5_safe_1pte": [
        "apic.ipis_sent",
        "shootdown.shootdowns",
        "shootdown.flush_requests",
        "shootdown.early_acks",
        "coherence.transfers",
        "engine.events_processed",
    ],
    "fig6_safe_10pte": ["apic.ipis_sent", "shootdown.shootdowns"],
    "fig7_unsafe_1pte": ["apic.ipis_sent", "shootdown.shootdowns"],
    "fig8_unsafe_10pte": ["apic.ipis_sent", "shootdown.shootdowns"],
    "fig9_cow": [
        "kernel.cow_faults",
        "shootdown.cow_flush_avoided",
        "engine.events_processed",
    ],
    "table3_summary": [
        "apic.ipis_sent",
        "shootdown.shootdowns",
        "engine.events_processed",
    ],
    "fig1_3_protocol_timeline": ["apic.ipis_sent", "shootdown.shootdowns"],
    "fig4_cacheline_consolidation": ["coherence.transfers", "shootdown.shootdowns"],
    # The numa bench's metrics come from its NUMA (non-replicated) mode: the
    # cross-socket walker must actually pay remote walks and remote DRAM
    # fills, or the node model silently degraded to flat. The replication
    # ablation rides the generic "ablations" gate below.
    "numa_walk": [
        "numa.remote_walks",
        "numa.remote_walk_cycles",
        "numa.remote_dram_accesses",
        "shootdown.shootdowns",
        "engine.events_processed",
    ],
}

# Counters that must be strictly positive in the queue backend's snapshot
# ("metrics_queue" -> "counters"), present whenever a bench ran with
# --backend queue or both. The async protocol's vital signs: rings were
# actually occupied, initiators actually spun, and (where drains outlast the
# initial spin budget) the retry loop actually resent IPIs. The ablations
# bench additionally proves the overflow -> flush_all safety valve fires
# (its snapshot comes from the deliberately undersized-ring row).
QUEUE_REQUIRED_NONZERO = {
    "fig5_safe_1pte": [
        "queue.flush_requests",
        "queue.shootdowns",
        "queue.enqueued",
        "queue.max_ring_occupancy",
        "queue.drains",
        "queue.drained_entries",
        "queue.acks",
        "queue.spin_polls",
        "queue.spin_cycles",
        "queue.ipi_resends",
        "engine.events_processed",
    ],
    "fig6_safe_10pte": [
        "queue.shootdowns",
        "queue.max_ring_occupancy",
        "queue.spin_cycles",
        "queue.ipi_resends",
    ],
    "fig7_unsafe_1pte": [
        "queue.shootdowns",
        "queue.max_ring_occupancy",
        "queue.spin_cycles",
    ],
    "fig8_unsafe_10pte": [
        "queue.shootdowns",
        "queue.max_ring_occupancy",
        "queue.spin_cycles",
    ],
    "fig9_cow": ["kernel.cow_faults", "queue.cow_flush_avoided"],
    "fig10_sysbench": ["queue.shootdowns", "queue.drains", "queue.acks"],
    "fig11_apache": ["queue.shootdowns", "queue.drains", "queue.acks"],
    "ablations": [
        "queue.shootdowns",
        "queue.max_ring_occupancy",
        "queue.ring_overflows",
        "queue.flush_all_fallbacks",
        "queue.ipi_resends",
        "queue.spin_cycles",
    ],
}


def fail(path, msg):
    print(f"FAIL {path}: {msg}")
    return 1


def check_histograms(path, node, where=""):
    """Recursively reject histograms that dropped samples. The decimating
    reservoir keeps percentiles meaningful up to a ~4G-arrival stride
    ceiling; dropped_samples > 0 means a workload blew past it and the
    percentile fields silently describe a truncated prefix of the run.
    """
    rc = 0
    if isinstance(node, dict):
        dropped = node.get("dropped_samples")
        if isinstance(dropped, (int, float)) and dropped > 0:
            rc |= fail(
                path,
                f"histogram {where or '<root>'} dropped {int(dropped)} samples;"
                " its percentiles no longer describe the whole run",
            )
        for key, child in node.items():
            rc |= check_histograms(path, child, f"{where}.{key}" if where else key)
    elif isinstance(node, list):
        for i, child in enumerate(node):
            rc |= check_histograms(path, child, f"{where}[{i}]")
    return rc


def check_sim_throughput(path, doc):
    """Self-benchmark gate: the simulator must actually move, and the engine
    hot path must be allocation-free in steady state (the whole point of the
    slab-pooled event queue). Thresholds are deliberately loose on speed —
    CI machines vary wildly — and exact on allocation counts, which don't.
    """
    rc = 0
    virtual = doc.get("virtual", {})
    wall = doc.get("wall", {})
    if virtual.get("plain_events_processed", 0) <= 0:
        rc |= fail(path, "virtual.plain_events_processed is not positive")
    if virtual.get("storm_shootdowns", 0) <= 0:
        rc |= fail(path, "virtual.storm_shootdowns is not positive")
    if wall.get("events_per_sec", 0) <= 0:
        rc |= fail(path, "wall.events_per_sec is not positive")
    if wall.get("allocs_per_event_steady", 1) != 0:
        rc |= fail(
            path,
            f'wall.allocs_per_event_steady is {wall.get("allocs_per_event_steady")!r},'
            " expected exactly 0 (engine hot path regressed to allocating)",
        )
    if wall.get("allocs_per_coro_frame_steady", 1) != 0:
        rc |= fail(
            path,
            f'wall.allocs_per_coro_frame_steady is {wall.get("allocs_per_coro_frame_steady")!r},'
            " expected exactly 0 (coroutine frame pool regressed)",
        )
    if rc == 0:
        print(
            f"OK   {path}: status=pass, "
            f'{wall.get("events_per_sec", 0) / 1e6:.1f}M events/s, '
            "0 steady-state allocs/event"
        )
    return rc


def check(path):
    rc = 0
    with open(path) as f:
        doc = json.load(f)
    name = doc.get("bench")
    if not name:
        return fail(path, 'missing "bench" key')
    if doc.get("schema_version") != 1:
        rc |= fail(path, f'unexpected schema_version {doc.get("schema_version")!r}')
    if doc.get("status") != "pass":
        rc |= fail(path, f'status is {doc.get("status")!r}, expected "pass"')
    rc |= check_histograms(path, doc.get("metrics", {}).get("histograms", {}))
    rc |= check_histograms(path, doc.get("metrics_queue", {}).get("histograms", {}))

    if name == "sim_throughput":
        return rc | check_sim_throughput(path, doc)

    # Which backends did this invocation run? An ipi-only run carries no
    # backend markers at all (byte-compatibility with pre-axis reports), so
    # the absence of "backends" in config means ipi alone.
    backends = doc.get("config", {}).get("backends", ["ipi"])
    has_ipi = "metrics" in doc
    has_queue = "metrics_queue" in doc
    if "ipi" in backends and not has_ipi and REQUIRED_NONZERO.get(name):
        rc |= fail(path, 'backend "ipi" ran but there is no "metrics" snapshot')
    if "queue" in backends and not has_queue and QUEUE_REQUIRED_NONZERO.get(name):
        rc |= fail(path, 'backend "queue" ran but there is no "metrics_queue" snapshot')

    checked = 0
    if has_ipi:
        counters = doc.get("metrics", {}).get("counters", {})
        required = REQUIRED_NONZERO.get(name, [])
        if required and not counters:
            return rc | fail(path, 'no "metrics.counters" section')
        for key in required:
            value = counters.get(key)
            if value is None:
                rc |= fail(path, f"counter {key} missing")
            elif value <= 0:
                rc |= fail(path, f"counter {key} is {value}, expected nonzero")
        checked += len(required)
    if has_queue:
        counters = doc.get("metrics_queue", {}).get("counters", {})
        required = QUEUE_REQUIRED_NONZERO.get(name, [])
        if required and not counters:
            return rc | fail(path, 'no "metrics_queue.counters" section')
        for key in required:
            value = counters.get(key)
            if value is None:
                rc |= fail(path, f"queue counter {key} missing")
            elif value <= 0:
                rc |= fail(path, f"queue counter {key} is {value}, expected nonzero")
        checked += len(required)

    # table3 carries the per-optimization ablation gate: every enabled
    # optimization must strictly reduce its targeted counter.
    for entry in doc.get("ablations", []):
        if not entry.get("strict_reduction"):
            rc |= fail(
                path,
                f'ablation {entry.get("optimization")}: {entry.get("counter")} '
                f'did not strictly reduce ({entry.get("baseline")} -> '
                f'{entry.get("optimized")})',
            )

    if rc == 0:
        print(f"OK   {path}: status=pass, {checked} required counters nonzero")
    return rc


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    rc = 0
    for path in argv[1:]:
        try:
            rc |= check(path)
        except (OSError, json.JSONDecodeError) as e:
            rc |= fail(path, str(e))
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv))
