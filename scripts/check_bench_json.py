#!/usr/bin/env python3
"""CI gate for BENCH_*.json snapshots.

Checks that each report is structurally sound (schema_version, status)
and that the counters the paper predicts to be nonzero under a shootdown
workload actually are. A zero "apic.ipis_sent" in fig5, for example,
means the simulated protocol silently stopped sending shootdown IPIs —
exactly the kind of regression latency numbers alone don't catch.

Usage: check_bench_json.py <BENCH_*.json> [more...]
Only standard-library Python.
"""

import json
import sys

# Counters that must be strictly positive per bench (dotted registry names
# under "metrics" -> "counters"). Benches not listed get structure checks only.
REQUIRED_NONZERO = {
    "fig5_safe_1pte": [
        "apic.ipis_sent",
        "shootdown.shootdowns",
        "shootdown.flush_requests",
        "shootdown.early_acks",
        "coherence.transfers",
        "engine.events_processed",
    ],
    "fig6_safe_10pte": ["apic.ipis_sent", "shootdown.shootdowns"],
    "fig7_unsafe_1pte": ["apic.ipis_sent", "shootdown.shootdowns"],
    "fig8_unsafe_10pte": ["apic.ipis_sent", "shootdown.shootdowns"],
    "fig9_cow": [
        "kernel.cow_faults",
        "shootdown.cow_flush_avoided",
        "engine.events_processed",
    ],
    "table3_summary": [
        "apic.ipis_sent",
        "shootdown.shootdowns",
        "engine.events_processed",
    ],
    "fig1_3_protocol_timeline": ["apic.ipis_sent", "shootdown.shootdowns"],
    "fig4_cacheline_consolidation": ["coherence.transfers", "shootdown.shootdowns"],
    # The numa bench's metrics come from its NUMA (non-replicated) mode: the
    # cross-socket walker must actually pay remote walks and remote DRAM
    # fills, or the node model silently degraded to flat. The replication
    # ablation rides the generic "ablations" gate below.
    "numa_walk": [
        "numa.remote_walks",
        "numa.remote_walk_cycles",
        "numa.remote_dram_accesses",
        "shootdown.shootdowns",
        "engine.events_processed",
    ],
    # The churn bench's snapshots come from an elision-on run: the reuse
    # machinery must actually have elided shootdowns and closed records
    # benignly, and real shootdown traffic (scratch munmaps, msync cleaning)
    # must still flow around the elisions.
    "churn": [
        "kernel.reuse_elided_flushes",
        "kernel.reuse_elided_pages",
        "kernel.reuse_benign_closes",
        "shootdown.shootdowns",
        "engine.events_processed",
    ],
}

# kernel.reuse_* counters are registered only when reuse_elision is on; every
# bench except churn runs with it off, so their presence anywhere else means
# the flag leaked into a paper configuration (breaking byte-identity).
REUSE_COUNTER_PREFIX = "kernel.reuse_"

# Counters that must be strictly positive in the queue backend's snapshot
# ("metrics_queue" -> "counters"), present whenever a bench ran with
# --backend queue or both. The async protocol's vital signs: rings were
# actually occupied, initiators actually spun, and (where drains outlast the
# initial spin budget) the retry loop actually resent IPIs. The ablations
# bench additionally proves the overflow -> flush_all safety valve fires
# (its snapshot comes from the deliberately undersized-ring row).
QUEUE_REQUIRED_NONZERO = {
    "fig5_safe_1pte": [
        "queue.flush_requests",
        "queue.shootdowns",
        "queue.enqueued",
        "queue.max_ring_occupancy",
        "queue.drains",
        "queue.drained_entries",
        "queue.acks",
        "queue.spin_polls",
        "queue.spin_cycles",
        "queue.ipi_resends",
        "engine.events_processed",
    ],
    "fig6_safe_10pte": [
        "queue.shootdowns",
        "queue.max_ring_occupancy",
        "queue.spin_cycles",
        "queue.ipi_resends",
    ],
    "fig7_unsafe_1pte": [
        "queue.shootdowns",
        "queue.max_ring_occupancy",
        "queue.spin_cycles",
    ],
    "fig8_unsafe_10pte": [
        "queue.shootdowns",
        "queue.max_ring_occupancy",
        "queue.spin_cycles",
    ],
    "fig9_cow": ["kernel.cow_faults", "queue.cow_flush_avoided"],
    "fig10_sysbench": ["queue.shootdowns", "queue.drains", "queue.acks"],
    "fig11_apache": ["queue.shootdowns", "queue.drains", "queue.acks"],
    "ablations": [
        "queue.shootdowns",
        "queue.max_ring_occupancy",
        "queue.ring_overflows",
        "queue.flush_all_fallbacks",
        "queue.ipi_resends",
        "queue.spin_cycles",
    ],
    "churn": [
        "kernel.reuse_elided_flushes",
        "kernel.reuse_elided_pages",
        "kernel.reuse_benign_closes",
        "queue.shootdowns",
    ],
}


def fail(path, msg):
    print(f"FAIL {path}: {msg}")
    return 1


def check_histograms(path, node, where=""):
    """Recursively reject histograms that dropped samples. The decimating
    reservoir keeps percentiles meaningful up to a ~4G-arrival stride
    ceiling; dropped_samples > 0 means a workload blew past it and the
    percentile fields silently describe a truncated prefix of the run.
    """
    rc = 0
    if isinstance(node, dict):
        dropped = node.get("dropped_samples")
        if isinstance(dropped, (int, float)) and dropped > 0:
            rc |= fail(
                path,
                f"histogram {where or '<root>'} dropped {int(dropped)} samples;"
                " its percentiles no longer describe the whole run",
            )
        for key, child in node.items():
            rc |= check_histograms(path, child, f"{where}.{key}" if where else key)
    elif isinstance(node, list):
        for i, child in enumerate(node):
            rc |= check_histograms(path, child, f"{where}[{i}]")
    return rc


def check_sim_throughput(path, doc):
    """Self-benchmark gate: the simulator must actually move, and the engine
    hot path must be allocation-free in steady state (the whole point of the
    slab-pooled event queue). Thresholds are deliberately loose on speed —
    CI machines vary wildly — and exact on allocation counts, which don't.
    """
    rc = 0
    virtual = doc.get("virtual", {})
    wall = doc.get("wall", {})
    if virtual.get("plain_events_processed", 0) <= 0:
        rc |= fail(path, "virtual.plain_events_processed is not positive")
    if virtual.get("storm_shootdowns", 0) <= 0:
        rc |= fail(path, "virtual.storm_shootdowns is not positive")
    if wall.get("events_per_sec", 0) <= 0:
        rc |= fail(path, "wall.events_per_sec is not positive")
    if wall.get("allocs_per_event_steady", 1) != 0:
        rc |= fail(
            path,
            f'wall.allocs_per_event_steady is {wall.get("allocs_per_event_steady")!r},'
            " expected exactly 0 (engine hot path regressed to allocating)",
        )
    if wall.get("allocs_per_coro_frame_steady", 1) != 0:
        rc |= fail(
            path,
            f'wall.allocs_per_coro_frame_steady is {wall.get("allocs_per_coro_frame_steady")!r},'
            " expected exactly 0 (coroutine frame pool regressed)",
        )

    # --sim-threads must not tax the serial protocol path: the same madvise
    # storm under the sharded engine config (whose shard queues stay empty)
    # must stay within noise of the serial engine. 1.5x is far above timer
    # jitter on any CI machine yet catches an accidental hot-path branch.
    ns1 = wall.get("ns_per_shootdown", 0)
    ns2 = wall.get("ns_per_shootdown_sim_threads_2", 0)
    if ns2 <= 0:
        rc |= fail(path, "wall.ns_per_shootdown_sim_threads_2 is not positive")
    elif ns1 > 0 and ns2 > ns1 * 1.5:
        rc |= fail(
            path,
            f"--sim-threads 2 shootdown storm regressed: {ns2:.0f} ns vs {ns1:.0f} ns serial",
        )

    # Shard-scaling sweep: every shard count must replay the identical
    # timeline (the conservative-lookahead determinism contract), cross-shard
    # traffic must actually flow, and nothing may violate the lookahead
    # contract (clamped deliveries would mean nondeterministic delivery).
    rows = {row.get("shards"): row for row in doc.get("rows", [])}
    for shards in (1, 2, 4, 8):
        if shards not in rows:
            rc |= fail(path, f"shard sweep row for {shards} shards missing")
    if rc:
        return rc
    base = rows[1]
    if base.get("events_processed", 0) <= 0:
        rc |= fail(path, "shard sweep: serial baseline processed no events")
    for shards, row in sorted(rows.items()):
        if row.get("timeline_checksum") != base.get("timeline_checksum") or row.get(
            "events_processed"
        ) != base.get("events_processed"):
            rc |= fail(path, f"shard sweep: {shards} shards diverged from the serial replay")
        if row.get("clamped_deliveries", 0) != 0:
            rc |= fail(path, f"shard sweep: {shards} shards clamped deliveries")
        if shards > 1 and row.get("cross_shard_messages", 0) <= 0:
            rc |= fail(path, f"shard sweep: {shards} shards sent no cross-shard messages")
        if not 0 <= row.get("horizon_stall_fraction", -1) <= 1:
            rc |= fail(path, f"shard sweep: {shards} shards bad horizon_stall_fraction")

    sweep_wall = {p.get("shards"): p for p in wall.get("shard_sweep", [])}
    serial = sweep_wall.get(1, {})
    if serial.get("events_per_sec", 0) <= 0:
        rc |= fail(path, "wall.shard_sweep serial point missing or idle")
    # The storm run allocates only during setup (engine pool growth, lanes)
    # and per cross-shard delivery (mailed-id registry); amortized it must
    # stay far below one allocation per event.
    if serial.get("allocs_per_event", 1) > 0.01:
        rc |= fail(
            path,
            f'shard sweep: serial allocs/event {serial.get("allocs_per_event")!r} > 0.01',
        )
    # The scaling gate proper: >= 2x aggregate events/s at 8 shards. Only
    # meaningful with real parallelism under the pool, so it is conditional
    # on the host actually having cores to scale onto.
    host_cores = wall.get("host_cores", 0)
    speedup8 = sweep_wall.get(8, {}).get("speedup_vs_serial", 0)
    if host_cores >= 4:
        if speedup8 < 2.0:
            rc |= fail(
                path,
                f"shard sweep: 8-shard speedup {speedup8:.2f}x < 2x on a {host_cores}-core host",
            )
    elif speedup8 <= 0:
        rc |= fail(path, "shard sweep: 8-shard point missing")

    if rc == 0:
        print(
            f"OK   {path}: status=pass, "
            f'{wall.get("events_per_sec", 0) / 1e6:.1f}M events/s, '
            "0 steady-state allocs/event, "
            f"8-shard speedup {speedup8:.2f}x on {host_cores} cores"
        )
    return rc


def check_churn_rows(path, doc):
    """Churn sweep gate: every (backend, workload, threads) cell's elision-on
    run must actually elide shootdowns and close records benignly, and the
    elision must strictly reduce FlushRange traffic vs its own off baseline —
    the optimization's entire claim, checked per cell rather than on the one
    cell the snapshot happens to come from.
    """
    rc = 0
    rows = doc.get("rows", [])
    if not rows:
        return fail(path, "churn: no sweep rows")
    for row in rows:
        label = (
            f'{row.get("backend", "ipi")}/{row.get("workload")}'
            f'/t{row.get("threads")}'
        )
        if row.get("elided_flushes", 0) <= 0:
            rc |= fail(path, f"churn {label}: elision-on run elided nothing")
        if row.get("benign_closes", 0) <= 0:
            rc |= fail(path, f"churn {label}: no benign closes")
        if row.get("off_flush_requests", 0) <= row.get("on_flush_requests", 0):
            rc |= fail(
                path,
                f'churn {label}: elision did not reduce flush requests '
                f'({row.get("off_flush_requests")} -> {row.get("on_flush_requests")})',
            )
        if row.get("speedup", 0) <= 0:
            rc |= fail(path, f"churn {label}: speedup not positive")
    return rc


def check_ablation_crossover(path, doc):
    """Queue cost-knob crossover gate: the sweep must carry an IPI baseline
    plus the full knob grid, every point must have actually run the storm
    (nonzero madvise cycles and spin polls), and the grid must exercise both
    queue failure modes — IPI resends (spin budget exhausted) and flush_all
    fallbacks (ring overflow) — somewhere in the grid.
    """
    rc = 0
    rows = [r for r in doc.get("rows", []) if r.get("ablation") == "queue_cost_crossover"]
    ipi_rows = [r for r in rows if r.get("backend") == "ipi"]
    queue_rows = [r for r in rows if r.get("backend") == "queue"]
    if len(ipi_rows) != 1:
        return rc | fail(path, f"crossover: expected 1 ipi baseline row, got {len(ipi_rows)}")
    if len(queue_rows) < 8:
        return rc | fail(path, f"crossover: only {len(queue_rows)} queue grid points")
    if ipi_rows[0].get("madvise_cycles", 0) <= 0:
        rc |= fail(path, "crossover: ipi baseline madvise_cycles not positive")
    for row in queue_rows:
        label = (
            f'ring {row.get("ring_entries")} spin {row.get("initial_spin")}'
            f' backoff {row.get("backoff_mult")}'
        )
        if row.get("madvise_cycles", 0) <= 0:
            rc |= fail(path, f"crossover {label}: madvise_cycles not positive")
        if row.get("spin_polls", 0) <= 0:
            rc |= fail(path, f"crossover {label}: initiator never spun")
        if row.get("vs_ipi", 0) <= 0:
            rc |= fail(path, f"crossover {label}: vs_ipi ratio not positive")
    if not any(r.get("ipi_resends", 0) > 0 for r in queue_rows):
        rc |= fail(path, "crossover: no grid point exercised IPI resends")
    if not any(r.get("flush_all_fallbacks", 0) > 0 for r in queue_rows):
        rc |= fail(path, "crossover: no grid point exercised the flush_all fallback")
    return rc


def check(path):
    rc = 0
    with open(path) as f:
        doc = json.load(f)
    name = doc.get("bench")
    if not name:
        return fail(path, 'missing "bench" key')
    if doc.get("schema_version") != 1:
        rc |= fail(path, f'unexpected schema_version {doc.get("schema_version")!r}')
    if doc.get("status") != "pass":
        rc |= fail(path, f'status is {doc.get("status")!r}, expected "pass"')
    rc |= check_histograms(path, doc.get("metrics", {}).get("histograms", {}))
    rc |= check_histograms(path, doc.get("metrics_queue", {}).get("histograms", {}))

    if name == "sim_throughput":
        return rc | check_sim_throughput(path, doc)

    # Which backends did this invocation run? An ipi-only run carries no
    # backend markers at all (byte-compatibility with pre-axis reports), so
    # the absence of "backends" in config means ipi alone.
    backends = doc.get("config", {}).get("backends", ["ipi"])
    has_ipi = "metrics" in doc
    has_queue = "metrics_queue" in doc
    if "ipi" in backends and not has_ipi and REQUIRED_NONZERO.get(name):
        rc |= fail(path, 'backend "ipi" ran but there is no "metrics" snapshot')
    if "queue" in backends and not has_queue and QUEUE_REQUIRED_NONZERO.get(name):
        rc |= fail(path, 'backend "queue" ran but there is no "metrics_queue" snapshot')

    checked = 0
    if has_ipi:
        counters = doc.get("metrics", {}).get("counters", {})
        required = REQUIRED_NONZERO.get(name, [])
        if required and not counters:
            return rc | fail(path, 'no "metrics.counters" section')
        for key in required:
            value = counters.get(key)
            if value is None:
                rc |= fail(path, f"counter {key} missing")
            elif value <= 0:
                rc |= fail(path, f"counter {key} is {value}, expected nonzero")
        checked += len(required)
    if has_queue:
        counters = doc.get("metrics_queue", {}).get("counters", {})
        required = QUEUE_REQUIRED_NONZERO.get(name, [])
        if required and not counters:
            return rc | fail(path, 'no "metrics_queue.counters" section')
        for key in required:
            value = counters.get(key)
            if value is None:
                rc |= fail(path, f"queue counter {key} missing")
            elif value <= 0:
                rc |= fail(path, f"queue counter {key} is {value}, expected nonzero")
        checked += len(required)
        if name == "ablations":
            rc |= check_ablation_crossover(path, doc)
    if name == "churn":
        rc |= check_churn_rows(path, doc)
    else:
        for section in ("metrics", "metrics_queue"):
            for key in doc.get(section, {}).get("counters", {}):
                if key.startswith(REUSE_COUNTER_PREFIX):
                    rc |= fail(
                        path,
                        f"{section}.counters.{key} present: reuse_elision leaked "
                        "into a paper configuration",
                    )

    # table3 carries the per-optimization ablation gate: every enabled
    # optimization must strictly reduce its targeted counter.
    for entry in doc.get("ablations", []):
        if not entry.get("strict_reduction"):
            rc |= fail(
                path,
                f'ablation {entry.get("optimization")}: {entry.get("counter")} '
                f'did not strictly reduce ({entry.get("baseline")} -> '
                f'{entry.get("optimized")})',
            )

    if rc == 0:
        print(f"OK   {path}: status=pass, {checked} required counters nonzero")
    return rc


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    rc = 0
    for path in argv[1:]:
        try:
            rc |= check(path)
        except (OSError, json.JSONDecodeError) as e:
            rc |= fail(path, str(e))
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv))
