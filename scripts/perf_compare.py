#!/usr/bin/env python3
"""Wall-clock perf diff for BENCH_sim_throughput.json against a committed
baseline.

The sim_throughput bench reports its host-dependent results under "wall":
engine events/s, coroutine frames/s, ns per simulated shootdown, and the
shard/protocol scaling sweeps. This script compares a fresh run against the
baseline under bench/baselines/ and WARNS when any tracked metric regressed
by more than the threshold (10% by default). Wall-clock numbers vary across
hosts, so the default mode never fails the build — it is a tripwire, not a
gate. Pass --strict (the perf CI job does, on pinned runner hardware) to
exit nonzero on regression instead.

Usage: perf_compare.py [--baseline FILE] [--threshold PCT] [--strict]
                       BENCH_sim_throughput.json
Only standard-library Python.
"""

import argparse
import json
import sys

# (label, path under "wall", higher_is_better). The two headline metrics the
# issue names — events/s and ns/shootdown — plus the rest of the engine hot
# paths so a regression in any phase trips the wire.
METRICS = [
    ("plain events/s", ("events_per_sec",), True),
    ("coro frames/s", ("coro_frames_per_sec",), True),
    ("ns/shootdown (serial)", ("ns_per_shootdown",), False),
    ("ns/shootdown (sim-threads 2)", ("ns_per_shootdown_sim_threads_2",), False),
]


def walk(obj, path):
    for key in path:
        if not isinstance(obj, dict) or key not in obj:
            return None
        obj = obj[key]
    return obj


def sweep_rows(wall, key, id_key):
    """Index a sweep array ([{id_key: ..., metrics...}]) by its id column."""
    rows = wall.get(key, [])
    out = {}
    if isinstance(rows, list):
        for row in rows:
            if isinstance(row, dict) and id_key in row:
                out[(row.get("sharded"), row[id_key])] = row
    return out


def collect(report):
    wall = report.get("wall", {})
    vals = {}
    for label, path, higher in METRICS:
        v = walk(wall, path)
        if isinstance(v, (int, float)) and v > 0:
            vals[label] = (float(v), higher)
    # Per-point sweep throughput: shard storm events/s by shard count, and
    # the protocol storm's events/s + ns/shootdown by (sharded, threads).
    for row in wall.get("shard_sweep", []) or []:
        v = row.get("events_per_sec")
        if isinstance(v, (int, float)) and v > 0:
            vals[f"shard_sweep events/s (shards={row.get('shards')})"] = (float(v), True)
    for row in wall.get("protocol_sweep", []) or []:
        tag = "serial" if not row.get("sharded") else f"threads={row.get('threads')}"
        v = row.get("events_per_sec")
        if isinstance(v, (int, float)) and v > 0:
            vals[f"protocol_sweep events/s ({tag})"] = (float(v), True)
        v = row.get("ns_per_shootdown")
        if isinstance(v, (int, float)) and v > 0:
            vals[f"protocol_sweep ns/shootdown ({tag})"] = (float(v), False)
    return vals


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("report", help="fresh BENCH_sim_throughput.json")
    ap.add_argument("--baseline", default="bench/baselines/sim_throughput.json")
    ap.add_argument("--threshold", type=float, default=10.0,
                    help="regression warning threshold, percent (default 10)")
    ap.add_argument("--strict", action="store_true",
                    help="exit 1 on regression instead of warning")
    args = ap.parse_args()

    with open(args.report) as f:
        current = collect(json.load(f))
    try:
        with open(args.baseline) as f:
            base = collect(json.load(f))
    except FileNotFoundError:
        print(f"perf_compare: no baseline at {args.baseline}; nothing to compare")
        return 0

    regressions = []
    print(f"perf_compare: {args.report} vs {args.baseline} "
          f"(warn at {args.threshold:.0f}% regression)")
    for label in sorted(base):
        if label not in current:
            print(f"  {label:45s} MISSING from current report")
            regressions.append(label)
            continue
        b, higher = base[label]
        c, _ = current[label]
        delta_pct = (c - b) / b * 100.0
        regressed = (-delta_pct if higher else delta_pct) > args.threshold
        marker = " <-- REGRESSED" if regressed else ""
        print(f"  {label:45s} {b:14.1f} -> {c:14.1f}  ({delta_pct:+6.1f}%){marker}")
        if regressed:
            regressions.append(label)

    if regressions:
        print(f"\nWARNING: {len(regressions)} metric(s) regressed beyond "
              f"{args.threshold:.0f}%: {', '.join(regressions)}", file=sys.stderr)
        if args.strict:
            return 1
        print("(wall-clock comparison across differing hosts; not failing the build)",
              file=sys.stderr)
    else:
        print("\nperf_compare: no regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
