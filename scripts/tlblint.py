#!/usr/bin/env python3
"""tlblint: static concurrency & determinism linter for the tlbsim tree.

Four rule classes, each aimed at an invariant the parallel core depends on
but the C++ type system cannot state:

  banked        Shard-affinity. Members annotated `// tlblint: banked(socket)`
                hold per-socket protocol state (coherence banks, apic banks,
                queue-backend ticket banks, SocketMask words). They may be
                referenced only inside functions annotated
                `// tlblint: shard-local` (runs inside the owning shard's
                engine window) or `// tlblint: setup` (single-threaded
                configure/aggregate context: construction, ConfigureBanks,
                Snapshot between runs). Anything else is a latent cross-shard
                race that no mutex will ever flag, because the ownership
                discipline is the engine's window barrier, not a lock.

  layering      Include-direction DAG over src/ subdirectories. The checker
                (src/check) is observational: nothing outside it may include
                it. src/sim is the foundation: it includes only src/base.
                The full allowed-dependency map is ALLOWED_DEPS below; the
                single historical back-edge (src/kernel/kernel.h ->
                src/core/optimizations.h) is pinned in LAYERING_WHITELIST as
                a file pair so it cannot silently widen into kernel -> core.

  determinism   Host-nondeterminism gate (supersedes
                scripts/check_determinism_lint.py, same suppression syntax).
                Flags host clocks outside sanctioned hosts-side-timing code,
                host randomness, range-for over unordered containers, and
                pointer-keyed ordered containers (std::map/set<T*>: iteration
                order follows allocation addresses). Suppress a provably
                order-independent loop with `// det-ok: <why>` on the line.

  no-ts-optout  The clang thread-safety escape hatch NO_THREAD_SAFETY_ANALYSIS
                must not appear in src/exec, src/sim or src/core: the
                annotated concurrency core documents barrier-transferred
                ownership with AssertHeld() + a justification comment instead
                of opting out of the analysis.

Per-line suppression for any rule: `// tlblint: allow(<rule>) <reason>`.

Engine: a deliberately dependency-free syntactic analysis (Python stdlib
only — CI runners and dev containers need no libclang/bindings). The banked
rule uses a brace-tracking scope scanner, not a bare grep: a reference is
blessed by an annotation on any enclosing scope, so lambdas and nested
blocks inherit their function's affinity. An AST engine can slot in behind
the same Finding interface if clang Python bindings ever become a baseline.

Usage: tlblint.py [--root DIR] [--strict] [--json PATH] [--rules r1,r2,...]
Exit 0: clean. 1: findings. 2: usage/internal error.
"""

import argparse
import json
import os
import re
import sys

EXTS = (".h", ".cc", ".cpp")

# --- roots per rule class (relative to repo root) ---------------------------
DET_ROOTS = ("src", "bench", "examples")
SRC_ROOT = "src"
TS_OPTOUT_DIRS = ("src/exec/", "src/sim/", "src/core/")

# --- layering ---------------------------------------------------------------
# Allowed #include targets per src/ subdirectory (a dir always may include
# itself). Tight by construction: an edge is added here deliberately, with
# review, or the build goes red. Keep acyclic.
ALLOWED_DEPS = {
    "base": set(),
    "mm": set(),
    "sim": {"base"},
    "cache": {"sim"},
    "exec": {"base", "sim"},
    "hw": {"cache", "exec", "mm", "sim"},
    "virt": {"hw", "mm"},
    "kernel": {"cache", "hw", "mm", "sim"},
    "core": {"hw", "kernel", "sim"},
    "check": {"core", "hw", "kernel", "sim"},
    "workloads": {"cache", "core", "exec", "mm", "sim", "virt"},
}
# (including file, included file): historical back-edges pinned at file
# granularity so they cannot widen into a directory-level cycle.
LAYERING_WHITELIST = {
    ("src/kernel/kernel.h", "src/core/optimizations.h"),
}

# --- determinism ------------------------------------------------------------
# Paths (dir/ prefixes or exact files) where host clocks are by design:
# host-side speedup measurement and wall-clock self-benchmarks. src/base is
# the annotated Mutex/CondVar layer (chrono durations for bounded waits).
CLOCK_ALLOWED = ("src/exec/", "src/base/", "bench/report.cc", "bench/sim_throughput.cc")

DET_SUPPRESS = "det-ok:"
CLOCK_RE = re.compile(
    r"std::chrono::(?:system_clock|steady_clock|high_resolution_clock)"
    r"|\bsystem_clock\b|\bsteady_clock\b|\bhigh_resolution_clock\b"
    r"|\bclock_gettime\s*\(|\bgettimeofday\s*\(")
RAND_RE = re.compile(
    r"\brand\s*\(|\bsrand\s*\(|std::random_device|\brandom_device\b"
    r"|\bl?rand48\s*\(|\bdrand48\s*\(")
UNORDERED_DECL_RE = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\s*<.*>\s+(\w+)\s*[;={(]")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(.*?:\s*(?:\w+(?:\.|->))*(\w+)\s*\)")
PTRKEY_RE = re.compile(r"\b(?:std::)?(?:map|set|multimap|multiset)\s*<\s*(?:const\s+)?[\w:]+\s*\*")

# --- annotations ------------------------------------------------------------
BANKED_MARK_RE = re.compile(r"//\s*tlblint:\s*banked\(socket\)")
AFFINITY_MARK_RE = re.compile(r"//\s*tlblint:\s*(shard-local|setup)\b")
ALLOW_RE = re.compile(r"//\s*tlblint:\s*allow\(([\w-]+)\)")
TLBLINT_COMMENT_RE = re.compile(r"//\s*tlblint:\s*(\S+)")
KNOWN_DIRECTIVES_RE = re.compile(r"^(?:banked\(socket\)|shard-local|setup|allow\([\w-]+\))")
BANKED_NAME_RE = re.compile(r"([A-Za-z_]\w*)\s*(?:\[[^\]]*\])?\s*(?:=[^;]*|\{[^;]*\})?\s*;")
NO_TS_OPTOUT_RE = re.compile(r"\bNO_THREAD_SAFETY_ANALYSIS\b")

RULES = ("banked", "layering", "determinism", "no-ts-optout")


class Finding:
    def __init__(self, rule, path, line, message, text):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message
        self.text = text.rstrip()

    def as_dict(self):
        return {"rule": self.rule, "file": self.path, "line": self.line,
                "message": self.message, "text": self.text}


def rel(path, root):
    return os.path.relpath(path, root).replace(os.sep, "/")


def walk(root, subdirs):
    for sub in subdirs:
        base = os.path.join(root, sub)
        if not os.path.isdir(base):
            continue
        for dirpath, _, names in sorted(os.walk(base)):
            for name in sorted(names):
                if name.endswith(EXTS):
                    yield os.path.join(dirpath, name)


def read_lines(path):
    with open(path, encoding="utf-8") as f:
        return f.readlines()


def strip_strings(code):
    # Blank out string and char literal contents (keeps column positions).
    out = []
    i, n = 0, len(code)
    while i < n:
        c = code[i]
        if c in "\"'":
            quote = c
            out.append(c)
            i += 1
            while i < n and code[i] != quote:
                out.append(" " if code[i] != "\\" else " ")
                i += 2 if code[i] == "\\" else 1
            if i < n:
                out.append(quote)
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


class LineSplitter:
    """Splits physical lines into (code, comment) across // and block comments."""

    def __init__(self):
        self.in_block = False

    def split(self, line):
        code, comment = [], []
        i, n = 0, len(line)
        while i < n:
            if self.in_block:
                end = line.find("*/", i)
                if end < 0:
                    comment.append(line[i:])
                    i = n
                else:
                    comment.append(line[i:end])
                    self.in_block = False
                    i = end + 2
                continue
            two = line[i:i + 2]
            if two == "//":
                comment.append(line[i + 2:])
                i = n
            elif two == "/*":
                self.in_block = True
                i += 2
            elif line[i] in "\"'":
                # skip literal so comment markers inside strings don't trigger
                quote = line[i]
                code.append(line[i])
                i += 1
                while i < n and line[i] != quote:
                    code.append(line[i])
                    i += 2 if line[i] == "\\" else 1
                if i < n:
                    code.append(line[i])
                    i += 1
            else:
                code.append(line[i])
                i += 1
        return "".join(code), " ".join(comment)


# --- rule: banked -----------------------------------------------------------

def collect_banked_names(root, findings, strict):
    """Pass 1: member names declared with `// tlblint: banked(socket)`."""
    names = {}
    for path in walk(root, (SRC_ROOT,)):
        r = rel(path, root)
        splitter = LineSplitter()
        for lineno, line in enumerate(read_lines(path), 1):
            code, comment = splitter.split(line)
            if not BANKED_MARK_RE.search("//" + comment):
                continue
            m = BANKED_NAME_RE.search(strip_strings(code))
            if m:
                names.setdefault(m.group(1), []).append((r, lineno))
            elif strict:
                findings.append(Finding(
                    "banked", r, lineno,
                    "banked(socket) marker on a line with no recognizable member declaration",
                    line))
    return names


def check_banked_file(path, r, banked_names, findings):
    """Pass 2: brace-tracking scope scan; a banked-member reference needs a
    shard-local/setup annotation on some enclosing scope (or the statement
    in progress, which covers constructor initializer lists)."""
    tok_re = re.compile(r"[{};]|[A-Za-z_]\w*")
    scope_stack = []   # one annotation-set per open brace
    stmt_annos = set()
    splitter = LineSplitter()
    for lineno, line in enumerate(read_lines(path), 1):
        code, comment = splitter.split(line)
        comment = "//" + comment
        line_annos = {m.group(1) for m in AFFINITY_MARK_RE.finditer(comment)}
        stmt_annos |= line_annos
        is_decl = bool(BANKED_MARK_RE.search(comment))
        allowed = {m.group(1) for m in ALLOW_RE.finditer(comment)}
        code = strip_strings(code)
        if code.lstrip().startswith("#"):
            continue  # preprocessor: no brace/scope meaning
        for tok in tok_re.finditer(code):
            t = tok.group(0)
            if t == "{":
                scope_stack.append(frozenset(stmt_annos))
                stmt_annos = set()
            elif t == "}":
                if scope_stack:
                    scope_stack.pop()
                stmt_annos = set()
            elif t == ";":
                stmt_annos = set()
            elif t in banked_names and not is_decl and "banked" not in allowed:
                held = (line_annos | stmt_annos) & {"shard-local", "setup"}
                if not held and not any(
                        a in ("shard-local", "setup")
                        for s in scope_stack for a in s):
                    findings.append(Finding(
                        "banked", r, lineno,
                        f"banked(socket) member '{t}' referenced outside a "
                        "shard-local/setup-annotated function (see "
                        "docs/CHECKING.md § Static analysis)",
                        line))


def check_banked(root, findings, strict):
    banked_names = collect_banked_names(root, findings, strict)
    for path in walk(root, (SRC_ROOT,)):
        check_banked_file(path, rel(path, root), set(banked_names), findings)
    return banked_names


# --- rule: layering ---------------------------------------------------------

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"(src/([a-z_]+)/[^"]+)"')


def check_layering(root, findings):
    for path in walk(root, (SRC_ROOT,)):
        r = rel(path, root)
        parts = r.split("/")
        if len(parts) < 3:
            continue
        this_dir = parts[1]
        for lineno, line in enumerate(read_lines(path), 1):
            m = INCLUDE_RE.match(line)
            if not m:
                continue
            if "tlblint" in line and "allow(layering)" in line:
                continue
            target, target_dir = m.group(1), m.group(2)
            if target_dir == this_dir:
                continue
            if (r, target) in LAYERING_WHITELIST:
                continue
            allowed = ALLOWED_DEPS.get(this_dir)
            if allowed is None:
                findings.append(Finding(
                    "layering", r, lineno,
                    f"directory 'src/{this_dir}' has no entry in tlblint's "
                    "ALLOWED_DEPS layering map; add one deliberately",
                    line))
            elif target_dir not in allowed:
                findings.append(Finding(
                    "layering", r, lineno,
                    f"src/{this_dir} may not include src/{target_dir} "
                    f"(allowed: {sorted(allowed) or 'nothing'}); extend "
                    "ALLOWED_DEPS or LAYERING_WHITELIST in scripts/tlblint.py "
                    "only with a layering justification",
                    line))


# --- rule: determinism ------------------------------------------------------

def check_determinism(root, findings):
    files = list(walk(root, DET_ROOTS))
    unordered_vars = set()
    for path in files:
        for line in read_lines(path):
            m = UNORDERED_DECL_RE.search(line)
            if m:
                unordered_vars.add(m.group(1))
    for path in files:
        r = rel(path, root)
        clock_ok = any(r.startswith(p) if p.endswith("/") else r == p
                       for p in CLOCK_ALLOWED)
        for lineno, line in enumerate(read_lines(path), 1):
            if DET_SUPPRESS in line or "allow(determinism)" in line:
                continue
            if not clock_ok and CLOCK_RE.search(line):
                findings.append(Finding(
                    "determinism", r, lineno,
                    "host clock (use virtual time; see src/sim/engine.h)", line))
            if RAND_RE.search(line):
                findings.append(Finding(
                    "determinism", r, lineno,
                    "host randomness (use seeded tlbsim::Rng)", line))
            m = RANGE_FOR_RE.search(line)
            if m and m.group(1) in unordered_vars:
                findings.append(Finding(
                    "determinism", r, lineno,
                    f"iteration over unordered container '{m.group(1)}' "
                    "(hash order is not deterministic; sort first, or add "
                    "'// det-ok: <why order-independent>' if provably so)",
                    line))
            if PTRKEY_RE.search(line):
                findings.append(Finding(
                    "determinism", r, lineno,
                    "pointer-keyed ordered container (iteration order follows "
                    "allocation addresses, which vary run to run; key by a "
                    "stable id instead)", line))
    return unordered_vars


# --- rule: no-ts-optout -----------------------------------------------------

def check_ts_optout(root, findings):
    for path in walk(root, (SRC_ROOT,)):
        r = rel(path, root)
        if not any(r.startswith(d) for d in TS_OPTOUT_DIRS):
            continue
        for lineno, line in enumerate(read_lines(path), 1):
            if "allow(no-ts-optout)" in line:
                continue
            if NO_TS_OPTOUT_RE.search(line):
                findings.append(Finding(
                    "no-ts-optout", r, lineno,
                    "NO_THREAD_SAFETY_ANALYSIS is banned in src/exec, src/sim "
                    "and src/core; document barrier-transferred ownership with "
                    "AssertHeld() + a justification comment instead", line))


# --- strict-mode hygiene ----------------------------------------------------

def check_directive_hygiene(root, findings):
    """Every `// tlblint: ...` comment must be a recognized directive; a typo
    like `tlblint: shardlocal` would otherwise silently bless nothing."""
    roots = set(DET_ROOTS) | {SRC_ROOT}
    for path in walk(root, sorted(roots)):
        r = rel(path, root)
        for lineno, line in enumerate(read_lines(path), 1):
            for m in TLBLINT_COMMENT_RE.finditer(line):
                d = m.group(1)
                if not KNOWN_DIRECTIVES_RE.match(d):
                    findings.append(Finding(
                        "hygiene", r, lineno,
                        f"unrecognized tlblint directive '{d}' "
                        "(known: banked(socket), shard-local, setup, "
                        "allow(rule))", line))
                elif d.startswith("allow("):
                    named = d[len("allow("):].rstrip(")")
                    if named not in RULES:
                        findings.append(Finding(
                            "hygiene", r, lineno,
                            f"allow() names unknown rule '{named}' "
                            f"(known rules: {', '.join(RULES)})", line))


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    ap.add_argument("--strict", action="store_true",
                    help="also fail on tlblint-directive hygiene problems")
    ap.add_argument("--json", metavar="PATH", help="write findings as JSON")
    ap.add_argument("--rules", default=",".join(RULES),
                    help=f"comma-separated subset of: {', '.join(RULES)}")
    args = ap.parse_args(argv[1:])

    rules = [r.strip() for r in args.rules.split(",") if r.strip()]
    unknown = [r for r in rules if r not in RULES]
    if unknown:
        print(f"tlblint: unknown rule(s): {', '.join(unknown)}", file=sys.stderr)
        return 2

    findings = []
    banked_names = {}
    unordered_vars = set()
    if "banked" in rules:
        banked_names = check_banked(args.root, findings, args.strict)
    if "layering" in rules:
        check_layering(args.root, findings)
    if "determinism" in rules:
        unordered_vars = check_determinism(args.root, findings)
    if "no-ts-optout" in rules:
        check_ts_optout(args.root, findings)
    if args.strict:
        check_directive_hygiene(args.root, findings)

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    for f in findings:
        print(f"FAIL [{f.rule}] {f.path}:{f.line}: {f.message}\n     {f.text}")

    if args.json:
        payload = {
            "findings": [f.as_dict() for f in findings],
            "rules": rules,
            "strict": args.strict,
            "banked_members": {k: [f"{p}:{ln}" for p, ln in v]
                               for k, v in sorted(banked_names.items())},
            "unordered_vars_tracked": sorted(unordered_vars),
        }
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(payload, f, indent=2, sort_keys=True)
            f.write("\n")

    if findings:
        print(f"\ntlblint: {len(findings)} problem(s) "
              f"[rules: {', '.join(rules)}{', strict' if args.strict else ''}]")
        return 1
    print(f"tlblint: OK [rules: {', '.join(rules)}"
          f"{', strict' if args.strict else ''}; "
          f"{len(banked_names)} banked member(s), "
          f"{len(unordered_vars)} unordered var(s) tracked]")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
