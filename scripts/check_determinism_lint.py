#!/usr/bin/env python3
"""Superseded: the determinism lint now lives in scripts/tlblint.py.

This shim keeps the old entry point working (CI history, muscle memory) by
delegating to `tlblint.py --rules determinism`, which enforces the same
contract over a wider tree (src/, bench/, examples/) plus pointer-keyed
ordered containers, with the same `// det-ok: <reason>` suppressions.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import tlblint  # noqa: E402


def main(argv):
    args = [argv[0], "--rules", "determinism"]
    if len(argv) > 1:
        args += ["--root", argv[1]]
    return tlblint.main(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
