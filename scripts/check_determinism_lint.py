#!/usr/bin/env python3
"""Determinism lint: grep-level gate against host-nondeterminism in the
simulator sources.

The whole value proposition of tlbsim is bit-reproducible virtual-time runs
(same seed -> same timeline -> byte-identical stripped JSON, including across
--threads N). Three classes of code silently break that:

  1. Host clocks  — std::chrono::system_clock / steady_clock. Allowed ONLY in
     the sweep executor (src/exec/, which measures host-side speedup) and the
     wall-clock self-benchmark plumbing (bench/report.cc, bench/sim_throughput.cc);
     everything else must live in virtual time.
  2. Host randomness — rand(), std::random_device. The only sanctioned RNG is
     the seeded tlbsim::Rng (src/sim/rng.h).
  3. Unordered-container iteration — range-for over a std::unordered_map/set
     visits elements in hash order, which varies across libstdc++ versions and
     ASLR-affected pointer hashes. Any such loop whose body feeds output
     (JSON, counters with ordering, logs) is a reproducibility bug. The lint
     flags EVERY range-for over a variable declared as unordered_*; loops that
     are provably order-independent (sum / zero / unref-all) carry an
     explanatory `// det-ok: <reason>` suppression on the loop line.

Two-pass per translation-unit scope: pass 1 collects identifiers declared with
an unordered_* type anywhere in the scanned tree (member names like `refs_`
are unambiguous in this codebase); pass 2 flags range-fors over them.

Usage: check_determinism_lint.py [repo_root]
Exits nonzero listing offending file:line occurrences. Stdlib Python only.
"""

import os
import re
import sys

SCAN_ROOTS = ("src", "bench")
EXTS = (".h", ".cc")

# Paths (relative, '/'-separated) where host clocks are part of the design.
CLOCK_ALLOWED = ("src/exec/", "bench/report.cc", "bench/sim_throughput.cc")

SUPPRESS = "det-ok:"

CLOCK_RE = re.compile(r"std::chrono::(?:system_clock|steady_clock)|\bsystem_clock\b|\bsteady_clock\b")
RAND_RE = re.compile(r"\brand\s*\(|std::random_device|\brandom_device\b")
DECL_RE = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\s*<.*>\s+(\w+)\s*[;={(]")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(.*?:\s*(?:\w+(?:\.|->))*(\w+)\s*\)")


def rel(path, root):
    return os.path.relpath(path, root).replace(os.sep, "/")


def scan_files(root):
    for sub in SCAN_ROOTS:
        base = os.path.join(root, sub)
        for dirpath, _, names in sorted(os.walk(base)):
            for name in sorted(names):
                if name.endswith(EXTS):
                    yield os.path.join(dirpath, name)


def main(argv):
    root = argv[1] if len(argv) > 1 else os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    files = list(scan_files(root))

    # Pass 1: every identifier declared with an unordered_* type.
    unordered_vars = set()
    for path in files:
        with open(path, encoding="utf-8") as f:
            for line in f:
                m = DECL_RE.search(line)
                if m:
                    unordered_vars.add(m.group(1))

    problems = []
    for path in files:
        r = rel(path, root)
        clock_ok = any(r.startswith(p) if p.endswith("/") else r == p for p in CLOCK_ALLOWED)
        with open(path, encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                if SUPPRESS in line:
                    continue
                if not clock_ok and CLOCK_RE.search(line):
                    problems.append((r, lineno, "host clock (use virtual time; see src/sim/engine.h)", line))
                if RAND_RE.search(line):
                    problems.append((r, lineno, "host randomness (use seeded tlbsim::Rng)", line))
                m = RANGE_FOR_RE.search(line)
                if m and m.group(1) in unordered_vars:
                    problems.append(
                        (r, lineno,
                         f"iteration over unordered container '{m.group(1)}' "
                         "(hash order is not deterministic; sort first, or add "
                         "'// det-ok: <why order-independent>' if provably so)",
                         line))

    for r, lineno, why, line in problems:
        print(f"FAIL {r}:{lineno}: {why}\n     {line.rstrip()}")
    if problems:
        print(f"\ndeterminism lint: {len(problems)} problem(s)")
        return 1
    print(f"determinism lint: OK ({len(files)} files, {len(unordered_vars)} unordered vars tracked)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
